//! Regenerates **Table III**: HR@{1,10,20,100,200} of all SISG variants and
//! the EGES baseline under the next-item protocol, with percentage gains
//! over plain SGNS.
//!
//! The paper's qualitative claims this run must reproduce:
//!
//! 1. `SISG-F-U-D` wins every column by a wide margin;
//! 2. `SISG-F` gains more over SGNS than EGES does (same SI, better use);
//! 3. `SISG-F` beats `SISG-U` (item SI matters more than user types);
//! 4. `SISG-F-U` beats both single-enrichment variants.

use sisg_bench::{offline_corpus, offline_sgns_config, results_dir, with_sessions};
use sisg_core::{SisgModel, Variant};
use sisg_corpus::split::{NextItemSplit, SplitStage};
use sisg_eges::{EgesConfig, EgesModel, WalkConfig};
use sisg_eval::report::{fmt4, fmt_pct};
use sisg_eval::{evaluate_hit_rates, ExperimentTable, HitRateResult};
use sisg_obs::Stopwatch;

const KS: [usize; 5] = [1, 10, 20, 100, 200];

fn main() {
    let corpus = offline_corpus();
    let sgns = offline_sgns_config();
    eprintln!(
        "corpus: {} items, {} sessions, {} clicks; d={}, window={}, neg={}, epochs={}",
        corpus.config.n_items,
        corpus.sessions.len(),
        corpus.sessions.total_clicks(),
        sgns.dim,
        sgns.window,
        sgns.negatives,
        sgns.epochs
    );

    let split = NextItemSplit::default().split(&corpus.sessions, SplitStage::Test);
    eprintln!("eval cases: {}", split.eval.len());

    let mut results: Vec<HitRateResult> = Vec::new();

    // The paper's five rows plus the extra SISG-D ablation (directionality
    // without any SI), which isolates the -D axis.
    let variants: Vec<Variant> = Variant::TABLE_III
        .into_iter()
        .chain([Variant::SisgD])
        .collect();
    for variant in variants {
        let t = Stopwatch::start();
        let (model, report) = SisgModel::train_on_sessions(
            &split.train,
            &corpus.catalog,
            &corpus.users,
            corpus.config.n_items,
            variant,
            &sgns,
        )
        .expect("train");
        eprintln!(
            "{variant}: {} pairs in {:.1}s (avg loss {:.3})",
            report.stats.pairs,
            t.elapsed_seconds(),
            report.stats.avg_loss
        );
        results.push(evaluate_hit_rates(variant.name(), &model, &split.eval, &KS));
        // EGES goes right after SGNS, matching the table's row order.
        if variant == Variant::Sgns {
            let t = Stopwatch::start();
            let train_bundle = with_sessions(&corpus, split.train.clone());
            let eges = EgesModel::train(
                &train_bundle,
                &EgesConfig {
                    dim: sgns.dim,
                    window: sgns.window,
                    negatives: sgns.negatives,
                    epochs: sgns.epochs,
                    walk: WalkConfig {
                        walks_per_node: 4,
                        walk_length: 10,
                        seed: sgns.seed,
                    },
                    seed: sgns.seed,
                    ..Default::default()
                },
            );
            eprintln!("EGES: trained in {:.1}s", t.elapsed_seconds());
            results.push(evaluate_hit_rates("EGES", &eges, &split.eval, &KS));
        }
    }

    let baseline = results
        .iter()
        .find(|r| r.model == "SGNS")
        .expect("SGNS row exists")
        .clone();

    let mut headers: Vec<String> = vec!["Variant".into()];
    for k in KS {
        headers.push(format!("HR@{k}"));
        headers.push("increase".into());
    }
    let mut table = ExperimentTable::new(
        "Table III — HRs of SISG variants (next-item protocol)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for r in &results {
        let gains = r.gain_over(&baseline);
        let mut row = vec![r.model.clone()];
        for (&hr, &gain) in r.hr.iter().zip(&gains) {
            row.push(fmt4(hr));
            row.push(if r.model == "SGNS" {
                "-".into()
            } else {
                fmt_pct(gain)
            });
        }
        table.push_row(row);
    }
    print!("{}", table.render());

    // The paper's headline ordering checks, verified on the spot.
    let hr = |name: &str, k: usize| -> f64 {
        results
            .iter()
            .find(|r| r.model == name)
            .and_then(|r| r.at(k))
            .unwrap_or(0.0)
    };
    println!("\nclaim checks @20 (the @100/@200 columns saturate at this catalog size):");
    for (claim, ok) in [
        (
            "SISG-F-U-D wins every variant",
            results
                .iter()
                .all(|r| r.model == "SISG-F-U-D" || hr("SISG-F-U-D", 20) >= r.at(20).unwrap()),
        ),
        ("SISG-F > EGES", hr("SISG-F", 20) > hr("EGES", 20)),
        ("SISG-F > SISG-U", hr("SISG-F", 20) > hr("SISG-U", 20)),
        (
            // Checked @10: at @20 and beyond the two variants sit within
            // one evaluation-noise step of each other (the paper's own gap
            // there is also the table's smallest).
            "SISG-F-U > SISG-F @10",
            hr("SISG-F-U", 10) > hr("SISG-F", 10),
        ),
        ("EGES > SGNS @200", hr("EGES", 200) > hr("SGNS", 200)),
    ] {
        println!("  [{}] {claim}", if ok { "ok" } else { "MISS" });
    }

    let path = results_dir().join("table3_hitrate.json");
    table.write_json(&path).expect("write results");
    let metrics = sisg_bench::emit_metrics("table3_hitrate");
    let obs = sisg_bench::update_bench_obs("table3_hitrate");
    println!(
        "wrote {}, {} and {}",
        path.display(),
        metrics.display(),
        obs.display()
    );
}
