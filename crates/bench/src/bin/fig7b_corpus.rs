//! Regenerates **Figure 7(b)**: training speed (tokens per hour) vs corpus
//! size at a fixed worker count. The paper's curve dips as the corpus
//! grows and flattens past a knee (~12.8B tokens); ours sweeps scaled-down
//! corpora and reports both measured single-host throughput and modeled
//! cluster throughput.

use sisg_bench::{env_u64, env_usize, results_dir};
use sisg_corpus::{CorpusConfig, EnrichOptions, GeneratedCorpus};
use sisg_distributed::runtime::{train_distributed_on, PartitionStrategy};
use sisg_distributed::{ClusterCostModel, DistConfig};
use sisg_eval::ExperimentTable;

fn main() {
    let workers = env_usize("SISG_FIG7_WORKERS", 8);
    let seed = env_u64("SISG_SEED", 42);
    let scales: Vec<u32> = std::env::var("SISG_FIG7B_SCALES")
        .ok()
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![500, 1_000, 2_000, 4_000, 8_000, 16_000]);

    let base = DistConfig {
        workers,
        dim: 32,
        window: 4,
        negatives: 5,
        epochs: 1,
        hot_set_size: 1024,
        sync_interval: 4_000,
        strategy: PartitionStrategy::Hbgp { beta: 1.2 },
        ..Default::default()
    };

    let mut table = ExperimentTable::new(
        format!("Figure 7(b) — training speed vs corpus size ({workers} workers)"),
        &[
            "items",
            "tokens",
            "measured tok/s (1 host)",
            "modeled cluster tok/s",
            "remote frac",
        ],
    );

    let mut model = ClusterCostModel::default();
    let mut calibrated = false;
    for &items in &scales {
        let corpus = GeneratedCorpus::generate(CorpusConfig::scaled(items, seed));
        let (_, report) = train_distributed_on(&corpus, EnrichOptions::FULL, &base);
        if !calibrated {
            // Per-pair compute cost from the first (smallest) run; on one
            // physical core, wall seconds / total pairs is the per-worker
            // compute rate.
            model.seconds_per_pair =
                report.seconds / report.total_pairs().max(1) as f64 * workers as f64;
            calibrated = true;
        }
        let modeled = report.tokens_processed as f64 / report.modeled_seconds(&model).max(1e-9);
        table.push_row(vec![
            items.to_string(),
            format!("{:.2e}", report.tokens_processed as f64),
            format!("{:.3e}", report.tokens_per_second()),
            format!("{:.3e}", modeled),
            format!("{:.3}", report.remote_fraction()),
        ]);
        eprintln!(
            "items={items}: {:.1}s wall, {:.2e} tok/s measured",
            report.seconds,
            report.tokens_per_second()
        );
    }
    print!("{}", table.render());
    println!(
        "\npaper reference: speed decreases with corpus size and stabilizes \
         beyond ~12.8e9 tokens (32 workers); the same flattening-after-knee \
         shape is expected in the modeled column"
    );

    let path = results_dir().join("fig7b_corpus.json");
    table.write_json(&path).expect("write results");
    let metrics = sisg_bench::emit_metrics("fig7b_corpus");
    println!("wrote {} and {}", path.display(), metrics.display());
}
