//! End-to-end SGNS training throughput: pairs/sec and tokens/sec across
//! thread counts and dimensionalities, plus nanosecond-level timings of the
//! kernel layer itself.
//!
//! This is the perf trajectory of the repo (DESIGN.md §8): the run writes
//! `results/BENCH_perf.json` (schema `sisg.perf.v1`) and *preserves* the
//! committed `reference` section — the numbers measured on the pre-kernel
//! commit — so before/after is always visible in one file. `--smoke` runs a
//! seconds-scale subset with the same schema for CI validation
//! (`xtask validate-metrics`).
//!
//! Scale knobs: `SISG_PERF_TOKENS`, `SISG_PERF_SEQS`, `SISG_PERF_LEN`,
//! `SISG_SEED`, and `SISG_RESULTS` for the output directory.
//!
//! Every multi-thread tier runs twice — once per engine (`partitioned`
//! vs the legacy `atomic` Hogwild) — so the trajectory file A/Bs the
//! ownership-partitioned engine against the path it replaced
//! (docs/PARALLELISM.md §6 explains how to read the rows).
//!
//! Note: on a single-core host the multi-thread rows time-slice one CPU —
//! they measure per-engine overhead (atomics and contention for `atomic`,
//! the replicated scan and merges for `partitioned`), not parallel
//! speedup; the headline number is the `threads == 1` row (the exact
//! non-atomic path) and docs/PARALLELISM.md §6 gives the multi-core model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use sisg_bench::{emit_metrics, env_u64, env_usize, results_dir};
use sisg_corpus::TokenId;
use sisg_obs::Stopwatch;
use sisg_sgns::{count_freqs, train_with_freqs, SgnsConfig, TrainEngine, WindowMode};

/// One measured training run.
struct RunResult {
    engine: &'static str,
    threads: usize,
    dim: usize,
    pairs: u64,
    tokens: u64,
    seconds: f64,
}

impl RunResult {
    fn pairs_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.pairs as f64 / self.seconds
        } else {
            0.0
        }
    }

    fn tokens_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.tokens as f64 / self.seconds
        } else {
            0.0
        }
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("engine".into(), Value::Str(self.engine.into())),
            ("threads".into(), Value::U64(self.threads as u64)),
            ("dim".into(), Value::U64(self.dim as u64)),
            ("pairs".into(), Value::U64(self.pairs)),
            ("tokens".into(), Value::U64(self.tokens)),
            ("seconds".into(), Value::F64(self.seconds)),
            ("pairs_per_sec".into(), Value::F64(self.pairs_per_sec())),
            ("tokens_per_sec".into(), Value::F64(self.tokens_per_sec())),
        ])
    }
}

/// Synthetic click-log-like corpus: token frequency follows `u²` skew (a
/// hot head and a long tail, like item popularity), fixed-length sessions.
fn perf_corpus(n_tokens: u32, n_seqs: usize, seq_len: usize, seed: u64) -> Vec<Vec<TokenId>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_seqs)
        .map(|_| {
            (0..seq_len)
                .map(|_| {
                    let u: f64 = rng.gen();
                    TokenId((u * u * n_tokens as f64) as u32)
                })
                .collect()
        })
        .collect()
}

fn run_once(
    seqs: &Vec<Vec<TokenId>>,
    freqs: &[u64],
    dim: usize,
    threads: usize,
    engine: TrainEngine,
) -> RunResult {
    let cfg = SgnsConfig {
        dim,
        window: 4,
        window_mode: WindowMode::Symmetric,
        negatives: 5,
        epochs: 1,
        // Subsampling off: identical pair counts across runs makes the
        // pairs/sec ratio a pure kernel comparison.
        subsample: 0.0,
        threads,
        engine,
        seed: env_u64("SISG_SEED", 42),
        ..Default::default()
    };
    let (_store, stats) = train_with_freqs(seqs, freqs, &cfg);
    RunResult {
        engine: match (threads, engine) {
            (1, _) => "single",
            (_, TrainEngine::Partitioned) => "partitioned",
            (_, TrainEngine::AtomicHogwild) => "atomic",
            // perf_train always passes a concrete engine per tier.
            (_, TrainEngine::Auto) => "auto",
        },
        threads,
        dim,
        pairs: stats.pairs,
        tokens: stats.tokens,
        seconds: stats.seconds,
    }
}

/// Times `f` over `iters` calls and returns mean nanoseconds per call.
fn time_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    // One warm call to fault in caches and touch allocations.
    f();
    let watch = Stopwatch::start();
    for _ in 0..iters {
        f();
    }
    watch.elapsed_seconds() * 1e9 / iters as f64
}

/// Microbenchmarks of the kernel layer (dim 128, the paper's production
/// dimensionality). Criterion covers these with proper statistics in
/// `benches/kernels.rs`; this cheap Stopwatch variant puts indicative
/// numbers into the perf trajectory file alongside the e2e rows.
fn kernel_micro(smoke: bool) -> Value {
    use sisg_embedding::kernels;
    use sisg_embedding::Matrix;
    use std::hint::black_box;

    const DIM: usize = 128;
    let iters: u64 = if smoke { 20_000 } else { 200_000 };
    let x: Vec<f32> = (0..DIM).map(|i| (i as f32).sin()).collect();
    let y: Vec<f32> = (0..DIM).map(|i| (i as f32).cos()).collect();
    let m = Matrix::uniform_init(4, DIM, 7);
    let row = m.row_ptr(0);
    let mut dst = vec![0.0f32; DIM];
    let mut grad = vec![0.0f32; DIM];

    let mut fields: Vec<(String, Value)> = Vec::new();
    let mut push = |name: &str, ns: f64| fields.push((name.into(), Value::F64(ns)));

    push(
        "dot_ordered_d128_ns",
        time_ns(iters, || {
            black_box(kernels::dot_ordered(black_box(&x), black_box(&y)));
        }),
    );
    push(
        "dot_unrolled_d128_ns",
        time_ns(iters, || {
            black_box(kernels::dot(black_box(&x), black_box(&y)));
        }),
    );
    push(
        "axpy_unrolled_d128_ns",
        time_ns(iters, || {
            kernels::axpy(black_box(0.001), black_box(&x), black_box(&mut dst));
        }),
    );
    push(
        "fused_step_mut_d128_ns",
        time_ns(iters, || {
            kernels::fused_step(
                black_box(1e-6),
                black_box(&x),
                black_box(&mut dst),
                black_box(&mut grad),
            );
        }),
    );
    push(
        "rowptr_dot_ordered_d128_ns",
        time_ns(iters, || {
            black_box(row.dot_slice(black_box(&x)));
        }),
    );
    push(
        "rowptr_fused_step_d128_ns",
        time_ns(iters, || {
            row.fused_grad_step(black_box(1e-6), black_box(&x), black_box(&mut grad));
        }),
    );
    push(
        "rowptr_axpy_slice_d128_ns",
        time_ns(iters, || {
            row.axpy_slice(black_box(1e-6), black_box(&x));
        }),
    );
    Value::Object(fields)
}

/// Reads the `reference` section out of an existing perf file, if any.
fn load_reference(path: &std::path::Path) -> Value {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Value::Null;
    };
    let Ok(doc) = serde_json::from_str::<Value>(&text) else {
        return Value::Null;
    };
    doc.get_field("reference")
        .ok()
        .cloned()
        .unwrap_or(Value::Null)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_tokens, n_seqs, seq_len) = if smoke {
        (300u32, 120usize, 20usize)
    } else {
        (
            env_usize("SISG_PERF_TOKENS", 2_000) as u32,
            env_usize("SISG_PERF_SEQS", 3_000),
            env_usize("SISG_PERF_LEN", 40),
        )
    };
    let seed = env_u64("SISG_SEED", 42);
    let seqs = perf_corpus(n_tokens, n_seqs, seq_len, seed ^ 0x9E1F);
    let freqs = count_freqs(&seqs, n_tokens as usize);
    eprintln!(
        "perf corpus: {} tokens, {} sequences × {} ({} raw tokens)",
        n_tokens,
        n_seqs,
        seq_len,
        n_seqs * seq_len
    );

    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let dims: &[usize] = if smoke { &[32] } else { &[32, 128] };

    // Warm-up run so page faults and lazy init don't land in row one.
    let _ = run_once(&seqs, &freqs, dims[0], 1, TrainEngine::Partitioned);

    let mut runs = Vec::new();
    println!(
        "{:>11} {:>7} {:>5} {:>10} {:>9} {:>14} {:>14}",
        "engine", "threads", "dim", "pairs", "seconds", "pairs/sec", "tokens/sec"
    );
    for &dim in dims {
        for &threads in thread_counts {
            // threads == 1 is the exact reference path regardless of
            // engine; above that, A/B the partitioned engine against the
            // legacy atomic Hogwild it replaced.
            let engines: &[TrainEngine] = if threads == 1 {
                &[TrainEngine::Partitioned]
            } else {
                &[TrainEngine::Partitioned, TrainEngine::AtomicHogwild]
            };
            for &engine in engines {
                let r = run_once(&seqs, &freqs, dim, threads, engine);
                println!(
                    "{:>11} {:>7} {:>5} {:>10} {:>9.3} {:>14.0} {:>14.0}",
                    r.engine,
                    r.threads,
                    r.dim,
                    r.pairs,
                    r.seconds,
                    r.pairs_per_sec(),
                    r.tokens_per_sec()
                );
                runs.push(r);
            }
        }
    }

    let path = results_dir().join("BENCH_perf.json");
    let reference = load_reference(&path);
    let doc = Value::Object(vec![
        ("schema".into(), Value::Str("sisg.perf.v1".into())),
        ("name".into(), Value::Str("perf_train".into())),
        (
            "corpus".into(),
            Value::Object(vec![
                ("tokens".into(), Value::U64(n_tokens as u64)),
                ("sequences".into(), Value::U64(n_seqs as u64)),
                ("seq_len".into(), Value::U64(seq_len as u64)),
                ("smoke".into(), Value::Bool(smoke)),
            ]),
        ),
        ("reference".into(), reference),
        ("kernels".into(), kernel_micro(smoke)),
        (
            "runs".into(),
            Value::Array(runs.iter().map(RunResult::to_value).collect()),
        ),
    ]);
    let text = serde_json::to_string_pretty(&doc).expect("perf doc serializes");
    std::fs::write(&path, text + "\n").expect("write BENCH_perf.json");
    println!("wrote {}", path.display());
    let metrics = emit_metrics("perf_train");
    println!("metrics: {}", metrics.display());
}
