//! Ablation: **β (HBGP imbalance bound) sweep** (DESIGN.md §4).
//!
//! β trades balance for cut size: small β forces balanced partitions at
//! the cost of splitting hot category clusters apart; large β lets heavy
//! categories co-locate (small cut) but loads one worker. The paper picks
//! β = 1.2 "empirically" — this sweep shows what that choice buys.

use sisg_bench::{env_u64, env_usize, results_dir};
use sisg_corpus::vocab::TokenSpace;
use sisg_corpus::{CorpusConfig, EnrichOptions, EnrichedCorpus, GeneratedCorpus};
use sisg_distributed::partition::assign_all;
use sisg_distributed::HbgpPartitioner;
use sisg_eval::ExperimentTable;

fn main() {
    let items = env_usize("SISG_FIG7_ITEMS", 4_000) as u32;
    let corpus = GeneratedCorpus::generate(CorpusConfig::scaled(items, env_u64("SISG_SEED", 42)));
    // The balance cap binds when per-worker capacity is comparable to the
    // largest leaf categories — at this catalog size that means many
    // workers, matching the paper's production 32.
    let workers = env_usize("SISG_FIG7_WORKERS", 32);
    let enriched = EnrichedCorpus::build(&corpus, EnrichOptions::NONE);
    let space = TokenSpace::new(
        corpus.config.n_items,
        corpus.catalog.cardinalities(),
        corpus.users.n_user_types(),
    );
    let item_freqs = &enriched.vocab().freqs()[..corpus.config.n_items as usize];

    let mut table = ExperimentTable::new(
        format!("Ablation — HBGP beta sweep ({workers} workers, {items} items)"),
        &["beta", "cut fraction", "item-load imbalance"],
    );
    for beta in [1.0f64, 1.05, 1.2, 1.5, 2.0, 4.0] {
        let partitioner = HbgpPartitioner {
            beta,
            ..Default::default()
        };
        let map = assign_all(
            &partitioner,
            &corpus.sessions,
            &corpus.catalog,
            &space,
            workers,
            env_u64("SISG_SEED", 42),
        );
        table.push_row(vec![
            format!("{beta:.2}"),
            format!("{:.4}", map.cut_fraction(&corpus.sessions)),
            format!("{:.3}", map.imbalance(item_freqs)),
        ]);
    }
    print!("{}", table.render());
    println!("\npaper production setting: beta = 1.2");
    let path = results_dir().join("ablation_beta.json");
    table.write_json(&path).expect("write results");
    let metrics = sisg_bench::emit_metrics("ablation_beta");
    println!("wrote {} and {}", path.display(), metrics.display());
}
