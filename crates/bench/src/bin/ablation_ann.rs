//! Ablation: **serving-index choice** for the matching stage.
//!
//! Brute-force scanning is exact but linear in the catalog; at the paper's
//! scale (10⁹ items) the matching stage must serve from an ANN index. This
//! experiment trains SISG, indexes the L2-normalized item vectors (the
//! cosine retrieval space of the symmetric variants — the geometry both
//! index families are designed for), and compares brute force, IVF-Flat at
//! several probe counts, and HNSW on recall@K and query latency. The raw
//! inner-product space of the `-D` variants is served by IVF (whose L2
//! coarse quantizer tolerates norm spread); graph indexes need MIPS
//! reductions that degrade when norms track popularity — see
//! `sisg_ann::hnsw` docs.

use sisg_ann::{AnnIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex};
use sisg_bench::{offline_corpus, offline_sgns_config, results_dir};
use sisg_core::{SisgModel, Variant};
use sisg_corpus::TokenId;
use sisg_embedding::Matrix;
use sisg_eval::ExperimentTable;

fn main() {
    let corpus = offline_corpus();
    let sgns = offline_sgns_config();
    eprintln!("training SISG-F-U...");
    let (model, _) = SisgModel::train(&corpus, Variant::SisgFU, &sgns).expect("train");

    // Index the cosine retrieval space: normalized item input vectors.
    let n_items = corpus.config.n_items as usize;
    let dim = model.store().dim();
    let mut vectors = Matrix::zeros(n_items, dim);
    for i in 0..n_items {
        vectors
            .row_mut(i)
            .copy_from_slice(model.store().input(TokenId(i as u32)));
        sisg_embedding::math::normalize(vectors.row_mut(i));
    }
    // Queries: the same normalized vectors for a sample of items (the
    // matching stage queries with the clicked item's vector).
    let queries: Vec<u32> = (0..n_items as u32).step_by(23).collect();
    let query_vectors: Vec<Vec<f32>> = queries
        .iter()
        .map(|&q| vectors.row(q as usize).to_vec())
        .collect();

    let k = 100;
    let exact: Vec<Vec<u32>> = query_vectors
        .iter()
        .map(|q| {
            sisg_embedding::retrieve_top_k(q, &vectors, (0..n_items as u32).map(TokenId), k, None)
                .into_iter()
                .map(|n| n.token.0)
                .collect()
        })
        .collect();

    let mut table = ExperimentTable::new(
        format!(
            "Ablation — serving index ({} items, {} queries, recall@{k})",
            n_items,
            queries.len()
        ),
        &["index", "recall", "us/query", "scan fraction"],
    );

    let mut eval_index = |name: String, index: &dyn AnnIndex, scan_fraction: f64| {
        let start = sisg_obs::Stopwatch::start();
        let mut hits = 0usize;
        let mut total = 0usize;
        for (q, truth) in query_vectors.iter().zip(&exact) {
            let approx = index.search(q, k);
            for t in truth {
                total += 1;
                if approx.iter().any(|h| h.id.0 == *t) {
                    hits += 1;
                }
            }
        }
        let us = start.elapsed_seconds() * 1e6 / queries.len() as f64;
        table.push_row(vec![
            name,
            format!("{:.4}", hits as f64 / total as f64),
            format!("{us:.0}"),
            format!("{scan_fraction:.3}"),
        ]);
    };

    // Brute-force control.
    struct Exact<'a>(&'a Matrix);
    impl AnnIndex for Exact<'_> {
        fn search(&self, query: &[f32], k: usize) -> Vec<sisg_ann::Hit> {
            sisg_embedding::retrieve_top_k(
                query,
                self.0,
                (0..self.0.rows() as u32).map(TokenId),
                k,
                None,
            )
            .into_iter()
            .map(|n| sisg_ann::Hit {
                id: n.token,
                score: n.score,
            })
            .collect()
        }
        fn len(&self) -> usize {
            self.0.rows()
        }
    }
    eval_index("brute force".into(), &Exact(&vectors), 1.0);

    let nlist = (n_items as f64).sqrt() as usize;
    for nprobe in [1usize, 4, 8, 16] {
        let ivf = IvfIndex::build(
            &vectors,
            IvfConfig {
                nlist,
                nprobe,
                ..Default::default()
            },
        );
        let frac = ivf.scan_fraction();
        eval_index(format!("ivf nlist={nlist} nprobe={nprobe}"), &ivf, frac);
    }

    for ef in [32usize, 64, 128] {
        let hnsw = HnswIndex::build(
            &vectors,
            HnswConfig {
                m: 16,
                ef_search: ef,
                ..Default::default()
            },
        );
        eval_index(format!("hnsw m=16 ef={ef}"), &hnsw, f64::NAN);
    }

    print!("{}", table.render());
    println!(
        "\nexpected: recall climbs toward 1.0 with nprobe/ef while scanning a \
         small corpus fraction — the trade-off that makes billion-scale \
         serving possible"
    );
    let path = results_dir().join("ablation_ann.json");
    table.write_json(&path).expect("write results");
    let metrics = sisg_bench::emit_metrics("ablation_ann");
    println!("wrote {} and {}", path.display(), metrics.display());
}
