//! Regenerates **Figure 5**: t-SNE of user-type embeddings.
//!
//! The figure shows male and female user types concentrating in different
//! regions of the plane, with age clusters within each region. We quantify
//! both claims with silhouette scores (label = gender, label = age bucket)
//! and dump the 2-D coordinates for plotting.

use sisg_bench::{env_usize, offline_corpus, offline_sgns_config, results_dir};
use sisg_core::{SisgModel, Variant};
use sisg_corpus::UserTypeId;
use sisg_eval::tsne::{knn_purity, silhouette, tsne_2d, TsneConfig};
use sisg_eval::ExperimentTable;

fn main() {
    let corpus = offline_corpus();
    let sgns = offline_sgns_config();
    eprintln!("training SISG-F-U...");
    let (model, _) = SisgModel::train(&corpus, Variant::SisgFU, &sgns).expect("train");

    // Collect user-type embeddings with their demographics, keeping only
    // types that actually occur in sessions (zero-frequency ones were never
    // trained). Cap the point count: exact t-SNE is O(n²).
    let max_points = env_usize("SISG_TSNE_POINTS", 1_200);
    let space = model.space();
    let mut data: Vec<f32> = Vec::new();
    let mut genders: Vec<u32> = Vec::new();
    let mut ages: Vec<u32> = Vec::new();
    let mut kept = 0usize;
    // Count user-type occurrences.
    let mut type_sessions = vec![0u64; corpus.users.n_user_types() as usize];
    for s in corpus.sessions.iter() {
        type_sessions[corpus.users.user_type(s.user).index()] += 1;
    }
    for ut in 0..corpus.users.n_user_types() {
        if kept >= max_points {
            break;
        }
        if type_sessions[ut as usize] < 2 {
            continue;
        }
        let key = corpus.users.type_key(UserTypeId(ut));
        if key.gender > 1 {
            continue; // the figure plots the two major genders
        }
        data.extend_from_slice(model.token_input(space.user_type(UserTypeId(ut))));
        genders.push(key.gender as u32);
        ages.push(key.age as u32);
        kept += 1;
    }
    eprintln!("embedding {kept} user types with t-SNE...");
    let points = tsne_2d(&data, sgns.dim, &TsneConfig::default());

    let sil_gender = silhouette(&points, &genders);
    let sil_age = silhouette(&points, &ages);
    // (gender, age) cells are the actual blobs the generator plants.
    let cells: Vec<u32> = genders
        .iter()
        .zip(&ages)
        .map(|(&g, &a)| g * 16 + a)
        .collect();
    let sil_cell = silhouette(&points, &cells);
    let purity_gender = knn_purity(&points, &genders, 10);
    let purity_age = knn_purity(&points, &ages, 10);
    // Baseline: silhouette under randomly permuted labels should be ~0.
    let mut shuffled = genders.clone();
    let n = shuffled.len();
    for i in (1..n).rev() {
        // Deterministic LCG shuffle — good enough for a null baseline.
        let j = (i.wrapping_mul(0x5DEECE66D).wrapping_add(11)) % (i + 1);
        shuffled.swap(i, j);
    }
    let sil_null = silhouette(&points, &shuffled);

    let mut table = ExperimentTable::new(
        "Figure 5 — user-type embedding structure (silhouette of t-SNE layout)",
        &["labeling", "silhouette"],
    );
    table.push_row(vec!["gender (F vs M)".into(), format!("{sil_gender:.3}")]);
    table.push_row(vec!["age bucket".into(), format!("{sil_age:.3}")]);
    table.push_row(vec!["gender x age cell".into(), format!("{sil_cell:.3}")]);
    table.push_row(vec![
        "shuffled labels (null)".into(),
        format!("{sil_null:.3}"),
    ]);
    table.push_row(vec![
        "kNN purity, gender (vs 0.5 prior)".into(),
        format!("{purity_gender:.3}"),
    ]);
    table.push_row(vec![
        "kNN purity, age (vs ~0.2 prior)".into(),
        format!("{purity_age:.3}"),
    ]);
    print!("{}", table.render());
    println!(
        "\nclaim check: gender silhouette {} null baseline ({})",
        if sil_gender > sil_null + 0.05 {
            "clearly above"
        } else {
            "NOT above"
        },
        sil_null
    );

    // Dump points for external plotting.
    #[derive(serde::Serialize)]
    struct Point {
        x: f32,
        y: f32,
        gender: u32,
        age: u32,
    }
    let dump: Vec<Point> = points
        .iter()
        .zip(genders.iter().zip(&ages))
        .map(|(p, (&g, &a))| Point {
            x: p[0],
            y: p[1],
            gender: g,
            age: a,
        })
        .collect();
    let path = results_dir().join("fig5_tsne_points.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&dump).expect("serialize"),
    )
    .expect("write points");
    let tpath = results_dir().join("fig5_tsne.json");
    table.write_json(&tpath).expect("write results");
    let metrics = sisg_bench::emit_metrics("fig5_tsne");
    println!(
        "wrote {}, {} and {}",
        tpath.display(),
        path.display(),
        metrics.display()
    );
}
