//! Ablation: **HBGP vs hash partitioning** (DESIGN.md §4).
//!
//! Isolates what the smart partitioner buys: the fraction of pairs that
//! need cross-worker traffic, total bytes moved, and the item-frequency
//! load balance. The paper motivates HBGP with exactly this trade-off
//! (Section III-B).

use sisg_bench::{env_u64, env_usize, results_dir};
use sisg_corpus::{CorpusConfig, EnrichOptions, GeneratedCorpus};
use sisg_distributed::runtime::{train_distributed_on, PartitionStrategy};
use sisg_distributed::DistConfig;
use sisg_eval::ExperimentTable;

fn main() {
    let items = env_usize("SISG_FIG7_ITEMS", 4_000) as u32;
    let corpus = GeneratedCorpus::generate(CorpusConfig::scaled(items, env_u64("SISG_SEED", 42)));
    let workers = env_usize("SISG_FIG7_WORKERS", 8);

    let mut table = ExperimentTable::new(
        format!("Ablation — partitioning strategy ({workers} workers, {items} items)"),
        &[
            "strategy",
            "cut fraction",
            "remote pair frac",
            "item-item remote frac",
            "pair comm (MB)",
            "item-load imbalance",
            "pair imbalance",
        ],
    );

    for (label, strategy) in [
        ("hbgp (beta=1.2)", PartitionStrategy::Hbgp { beta: 1.2 }),
        ("hash", PartitionStrategy::Hash),
    ] {
        let cfg = DistConfig {
            workers,
            dim: 32,
            window: 4,
            negatives: 5,
            epochs: 1,
            hot_set_size: 1024,
            sync_interval: 4_000,
            strategy,
            ..Default::default()
        };
        let (_, r) = train_distributed_on(&corpus, EnrichOptions::FULL, &cfg);
        table.push_row(vec![
            label.into(),
            format!("{:.4}", r.cut_fraction),
            format!("{:.4}", r.remote_fraction()),
            format!("{:.4}", r.item_remote_fraction()),
            format!("{:.1}", r.pair_comm_bytes as f64 / 1e6),
            format!("{:.3}", r.imbalance),
            format!("{:.3}", r.pair_imbalance()),
        ]);
        eprintln!("{label}: done ({:.1}s)", r.seconds);
    }
    print!("{}", table.render());
    println!(
        "\nexpected: HBGP slashes the cut fraction (category-coherent sessions) \
         at a modest imbalance cost bounded by beta"
    );
    let path = results_dir().join("ablation_partition.json");
    table.write_json(&path).expect("write results");
    let metrics = sisg_bench::emit_metrics("ablation_partition");
    println!("wrote {} and {}", path.display(), metrics.display());
}
