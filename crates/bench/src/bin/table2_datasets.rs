//! Regenerates **Table II**: statistics of the three dataset scales.
//!
//! Taobao25M / Taobao100M / Taobao800M are scaled down by 1000× to 25k /
//! 100k / 800k items (override with `SISG_TABLE2_SCALES`, a comma-separated
//! item-count list). All Table II ratios are preserved: ~8 SI per item,
//! ~9 tokens per click, positive pairs from the window sampler, training
//! pairs = positives × (1 + 20 negatives).

use sisg_bench::{env_u64, results_dir};
use sisg_corpus::{CorpusConfig, DatasetStats, GeneratedCorpus};
use sisg_eval::ExperimentTable;

fn scales() -> Vec<u32> {
    std::env::var("SISG_TABLE2_SCALES")
        .ok()
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![25_000, 100_000, 800_000])
}

fn main() {
    let seed = env_u64("SISG_SEED", 42);
    let window = 5;
    let negatives = 20; // the paper's production ratio

    let mut table = ExperimentTable::new(
        "Table II — dataset statistics (paper scales / 1000)",
        &[
            "dataset",
            "#Items",
            "#SI",
            "#User types",
            "#Tokens",
            "#Positive pairs",
            "#Training pairs",
        ],
    );

    let mut asymmetry: Option<f64> = None;
    for items in scales() {
        let name = format!("taobao-{}k", items / 1000);
        eprintln!("generating {name} ({items} items)...");
        let corpus = GeneratedCorpus::generate(CorpusConfig::scaled(items, seed));
        if asymmetry.is_none() {
            // Section II-C estimates ~20% of item pairs have significantly
            // different forward/backward click counts; measure it on the
            // smallest corpus.
            asymmetry = Some(sisg_corpus::stats::asymmetry_rate(&corpus, 8, 2.0));
        }
        let stats = DatasetStats::compute_streaming(&name, &corpus, window, negatives);
        table.push_row(vec![
            stats.name.clone(),
            stats.n_items.to_string(),
            stats.n_si.to_string(),
            stats.n_user_types.to_string(),
            format!("{:.2e}", stats.n_tokens as f64),
            format!("{:.2e}", stats.n_positive_pairs as f64),
            format!("{:.2e}", stats.n_training_pairs as f64),
        ]);
    }

    print!("{}", table.render());
    if let Some(rate) = asymmetry {
        println!(
            "\nbehavior asymmetry: {:.1}% of frequent item pairs are strongly \
             one-directional (paper Section II-C estimates ~20%)",
            rate * 100.0
        );
    }
    println!(
        "paper reference (Taobao25M): #Items 2.55e7, #Tokens 2.3e10, \
         #Positive 2.0e11, #Training 4.2e12 (at 20 negatives)"
    );
    let path = results_dir().join("table2_datasets.json");
    table.write_json(&path).expect("write results");
    let metrics = sisg_bench::emit_metrics("table2_datasets");
    println!("wrote {} and {}", path.display(), metrics.display());
}
