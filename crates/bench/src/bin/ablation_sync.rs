//! Ablation: **hot-set synchronization semantics** (DESIGN.md §6).
//!
//! The paper synchronizes replicated hot-token vectors by *averaging* "at
//! regular intervals". Averaging divides the gradient mass accumulated
//! since the last barrier by the worker count — invisible when every hot
//! token receives billions of updates, crippling at simulation scale. This
//! run quantifies the difference against the delta-sum (parameter-server
//! push) reconciliation, and against disabling replication entirely, on
//! next-item HR.

use sisg_bench::{env_u64, env_usize, results_dir};
use sisg_core::{SisgModel, Variant};
use sisg_corpus::split::{NextItemSplit, SplitStage};
use sisg_corpus::vocab::TokenSpace;
use sisg_corpus::{CorpusConfig, EnrichOptions, EnrichedCorpus, GeneratedCorpus};
use sisg_distributed::runtime::{train_distributed, PartitionStrategy};
use sisg_distributed::{DistConfig, SyncMode};
use sisg_eval::{evaluate_hit_rates, ExperimentTable};

fn main() {
    let items = env_usize("SISG_ITEMS", 2_000) as u32;
    let corpus = GeneratedCorpus::generate(CorpusConfig::scaled(items, env_u64("SISG_SEED", 42)));
    let split = NextItemSplit::default().split(&corpus.sessions, SplitStage::Test);
    let enriched = EnrichedCorpus::build_from_sessions(
        &split.train,
        &corpus.catalog,
        &corpus.users,
        corpus.config.n_items,
        EnrichOptions::NONE,
    );
    let space = TokenSpace::new(
        corpus.config.n_items,
        corpus.catalog.cardinalities(),
        corpus.users.n_user_types(),
    );
    eprintln!("corpus: {} items, {} eval cases", items, split.eval.len());

    let mut table = ExperimentTable::new(
        "Ablation — ATNS replica synchronization (4 workers, |Q|=128)",
        &["reconciliation", "HR@10", "HR@20", "sync rounds"],
    );
    for (label, hot, mode) in [
        ("delta-sum (default)", 128usize, SyncMode::DeltaSum),
        ("averaging (paper-literal)", 128, SyncMode::Average),
        ("no replication (|Q|=0)", 0, SyncMode::DeltaSum),
    ] {
        let cfg = DistConfig {
            workers: 4,
            dim: 32,
            window: 3,
            negatives: 5,
            epochs: 2,
            hot_set_size: hot,
            sync_interval: 2_000,
            sync_mode: mode,
            strategy: PartitionStrategy::Hbgp { beta: 1.2 },
            ..Default::default()
        };
        let (store, report) = train_distributed(&enriched, &split.train, &corpus.catalog, &cfg);
        let model =
            SisgModel::from_store(Variant::Sgns, space.clone(), store).expect("store covers space");
        let hr = evaluate_hit_rates(label, &model, &split.eval, &[10, 20]);
        table.push_row(vec![
            label.into(),
            format!("{:.4}", hr.hr[0]),
            format!("{:.4}", hr.hr[1]),
            report.sync_rounds.to_string(),
        ]);
        eprintln!("{label}: done");
    }
    print!("{}", table.render());
    println!(
        "\nreading: reconciliation is an effective-learning-rate dial on hot \
         tokens. Averaging ≈ LR/w (starves them when barriers are frequent \
         relative to their update count — the failure mode on very small \
         corpora); delta-sum ≈ LR×w (overshoots when each round carries many \
         redundant updates — the regime here, where averaging's damping \
         actually stabilizes hot vectors). The paper's averaging choice is \
         sound at production update densities; pick per deployment scale."
    );
    let path = results_dir().join("ablation_sync.json");
    table.write_json(&path).expect("write results");
    let metrics = sisg_bench::emit_metrics("ablation_sync");
    println!("wrote {} and {}", path.display(), metrics.display());
}
