//! Load generator for the sharded serve engine (`crates/serve`).
//!
//! Replays one request stream twice — first through a sequential
//! [`MatchingService`] loop (how PR-3 consumers called the serving layer),
//! then through [`ServeEngine`] — and writes qps plus worker-side
//! p50/p90/p99 (from the `serve.request.us` obs histogram) to
//! `results/BENCH_serve.json`. The stream is skewed toward a small pool of
//! repeating *cold* keys: production cold traffic concentrates on newly
//! launched items going viral, and that repetition is exactly what the
//! engine's admission-gated cache converts from a full Eq. (6) scan into a
//! hash lookup. On a single-core host the speedup is therefore the cache
//! (plus per-shard pipelining), not parallelism.
//!
//! Scale knobs: `SISG_SERVE_ITEMS`, `SISG_SERVE_DIM`, `SISG_SERVE_REQS`,
//! `SISG_SERVE_SHARDS`, `SISG_SEED`, `SISG_RESULTS`. `--smoke` runs a
//! seconds-scale subset with the same output schema for CI validation
//! (`xtask validate-metrics`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use sisg_bench::{emit_metrics, env_u64, env_usize, results_dir};
use sisg_core::{MatchingService, ServingConfig, SisgModel, Variant};
use sisg_corpus::{CorpusConfig, GeneratedCorpus, ItemId};
use sisg_obs::Stopwatch;
use sisg_serve::{ServeEngine, ServeEngineConfig, ServeRequest};
use sisg_sgns::SgnsConfig;

const K: usize = 10;

fn click_counts(corpus: &GeneratedCorpus) -> Vec<u64> {
    let mut clicks = vec![0u64; corpus.config.n_items as usize];
    for s in corpus.sessions.iter() {
        for it in s.items {
            clicks[it.index()] += 1;
        }
    }
    clicks
}

/// The skewed request stream: mostly repeating cold keys (the cacheable
/// regime), a warm slice, and a pinch of cold-user traffic.
fn build_stream(
    corpus: &GeneratedCorpus,
    service: &MatchingService,
    n_requests: usize,
    seed: u64,
) -> Vec<ServeRequest> {
    let all: Vec<ItemId> = (0..corpus.config.n_items).map(ItemId).collect();
    let cold_pool: Vec<ItemId> = all
        .iter()
        .copied()
        .filter(|&i| service.is_cold(i))
        .take(48)
        .collect();
    let warm_pool: Vec<ItemId> = all
        .iter()
        .copied()
        .filter(|&i| !service.is_cold(i))
        .take(256)
        .collect();
    // Only demographic combos the trained registry can actually answer.
    let user_pool: Vec<(Option<u8>, Option<u8>, Option<u8>)> = [
        (None, None, None),
        (Some(0), None, None),
        (Some(1), None, None),
        (None, Some(1), None),
        (None, None, Some(1)),
    ]
    .into_iter()
    .filter(|&(g, a, p)| service.cold_user_candidates(g, a, p, K).is_ok())
    .collect();
    eprintln!(
        "pools: {} cold items, {} warm items, {} cold-user keys",
        cold_pool.len(),
        warm_pool.len(),
        user_pool.len()
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E17);
    let candidates = |item: ItemId| ServeRequest::Candidates {
        item,
        si_values: *corpus.catalog.si_values(item),
        k: K,
    };
    (0..n_requests)
        .map(|_| {
            let roll: f64 = rng.gen();
            if roll < 0.75 && !cold_pool.is_empty() {
                candidates(cold_pool[rng.gen_range(0..cold_pool.len())])
            } else if roll < 0.95 && !warm_pool.is_empty() {
                candidates(warm_pool[rng.gen_range(0..warm_pool.len())])
            } else if !user_pool.is_empty() {
                let (gender, age, purchase) = user_pool[rng.gen_range(0..user_pool.len())];
                ServeRequest::ColdUser {
                    gender,
                    age,
                    purchase,
                    k: K,
                }
            } else {
                candidates(all[rng.gen_range(0..all.len())])
            }
        })
        .collect()
}

/// The pre-engine serving path: one thread, one `MatchingService`, no
/// cache — every repeated cold key pays the full Eq. (6) scan again.
fn run_sequential(service: &MatchingService, stream: &[ServeRequest]) -> f64 {
    let watch = Stopwatch::start();
    for req in stream {
        match *req {
            ServeRequest::Candidates { item, si_values, k } => {
                let out = service
                    .candidates(item, &si_values, k)
                    .expect("stream items are in the catalog");
                std::hint::black_box(out);
            }
            ServeRequest::ColdUser {
                gender,
                age,
                purchase,
                k,
            } => {
                let out = service
                    .cold_user_candidates(gender, age, purchase, k)
                    .expect("stream demographics match");
                std::hint::black_box(out);
            }
        }
    }
    watch.elapsed_seconds()
}

/// Drives the engine in queue-sized batches: each chunk fits a single
/// shard's bounded queue even in the worst routing skew, so nothing sheds
/// and the measurement is pure serve throughput.
fn run_engine(engine: &ServeEngine, stream: &[ServeRequest], chunk: usize) -> f64 {
    let watch = Stopwatch::start();
    for batch in stream.chunks(chunk) {
        for result in engine.serve_batch(batch.iter().copied()) {
            let out = result.expect("chunks fit the bounded queues");
            std::hint::black_box(out);
        }
    }
    watch.elapsed_seconds()
}

fn snapshot_to_value(snap: &sisg_obs::Snapshot) -> (Value, Value, Value) {
    let counters = Value::Object(
        snap.counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::U64(*v)))
            .collect(),
    );
    let gauges = Value::Object(
        snap.gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::F64(*v)))
            .collect(),
    );
    let opt = |v: Option<f64>| v.map_or(Value::Null, Value::F64);
    let histograms = Value::Object(
        snap.histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Value::Object(vec![
                        ("count".into(), Value::U64(h.count)),
                        ("sum".into(), Value::U64(h.sum)),
                        ("max".into(), Value::U64(h.max)),
                        ("p50".into(), opt(h.p50)),
                        ("p90".into(), opt(h.p90)),
                        ("p99".into(), opt(h.p99)),
                    ]),
                )
            })
            .collect(),
    );
    (counters, gauges, histograms)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_items, dim, n_requests) = if smoke {
        (400u32, 16usize, 3_000usize)
    } else {
        (
            env_usize("SISG_SERVE_ITEMS", 2_400) as u32,
            env_usize("SISG_SERVE_DIM", 64),
            env_usize("SISG_SERVE_REQS", 24_000),
        )
    };
    let n_shards = env_usize("SISG_SERVE_SHARDS", 8);
    let queue_capacity = 256;
    let seed = env_u64("SISG_SEED", 42);

    eprintln!("training artifact: {n_items} items, dim {dim}");
    let corpus = GeneratedCorpus::generate(CorpusConfig::scaled(n_items, seed));
    let (model, _) = SisgModel::train(
        &corpus,
        Variant::SisgFU,
        &SgnsConfig {
            dim,
            window: 2,
            negatives: 2,
            epochs: 1,
            threads: 1,
            seed,
            ..Default::default()
        },
    )
    .expect("valid training config");
    let service = MatchingService::build(
        model,
        corpus.users.clone(),
        &click_counts(&corpus),
        ServingConfig {
            k: 32,
            min_clicks_for_warm: 3,
        },
    )
    .expect("valid serving config");
    eprintln!(
        "artifact: {} items, {:.1}% cold",
        service.n_items(),
        service.cold_fraction() * 100.0
    );

    let stream = build_stream(&corpus, &service, n_requests, seed);

    let seq_seconds = run_sequential(&service, &stream);
    let seq_qps = stream.len() as f64 / seq_seconds;
    println!(
        "sequential MatchingService loop: {} reqs in {seq_seconds:.3}s = {seq_qps:.0} qps",
        stream.len()
    );

    let config = ServeEngineConfig::builder()
        .n_shards(n_shards)
        .queue_capacity(queue_capacity)
        .cache_capacity(4096)
        .cache_admit_after(1)
        .build()
        .expect("valid engine config");
    let engine = ServeEngine::start(service, config).expect("engine starts");
    let engine_seconds = run_engine(&engine, &stream, queue_capacity);
    let engine_qps = stream.len() as f64 / engine_seconds;
    let speedup = engine_qps / seq_qps;
    let stats = engine.stats();
    println!(
        "serve engine ({n_shards} shards): {} reqs in {engine_seconds:.3}s = {engine_qps:.0} qps \
         ({speedup:.1}x sequential, {} cache hits / {} misses)",
        stream.len(),
        stats.cache_hits,
        stats.cache_misses
    );

    let snap = sisg_obs::registry().snapshot("perf_serve");
    let (counters, gauges, histograms) = snapshot_to_value(&snap);
    let request_us = snap
        .histograms
        .iter()
        .find(|(k, _)| k == "serve.request.us")
        .map(|(_, h)| h.clone());
    if let Some(h) = &request_us {
        println!(
            "worker latency (us): p50 {:?} p90 {:?} p99 {:?} max {}",
            h.p50, h.p90, h.p99, h.max
        );
    }
    let opt = |v: Option<f64>| v.map_or(Value::Null, Value::F64);
    let doc = Value::Object(vec![
        ("name".into(), Value::Str("perf_serve".into())),
        (
            "workload".into(),
            Value::Object(vec![
                ("items".into(), Value::U64(u64::from(n_items))),
                ("dim".into(), Value::U64(dim as u64)),
                ("requests".into(), Value::U64(stream.len() as u64)),
                ("k".into(), Value::U64(K as u64)),
                ("smoke".into(), Value::Bool(smoke)),
            ]),
        ),
        (
            "sequential".into(),
            Value::Object(vec![
                ("seconds".into(), Value::F64(seq_seconds)),
                ("qps".into(), Value::F64(seq_qps)),
            ]),
        ),
        (
            "engine".into(),
            Value::Object(vec![
                ("shards".into(), Value::U64(n_shards as u64)),
                ("queue_capacity".into(), Value::U64(queue_capacity as u64)),
                ("seconds".into(), Value::F64(engine_seconds)),
                ("qps".into(), Value::F64(engine_qps)),
                ("speedup_vs_sequential".into(), Value::F64(speedup)),
                ("cache_hits".into(), Value::U64(stats.cache_hits)),
                ("cache_misses".into(), Value::U64(stats.cache_misses)),
                ("overloaded".into(), Value::U64(stats.overloaded)),
                (
                    "request_us_p50".into(),
                    opt(request_us.as_ref().and_then(|h| h.p50)),
                ),
                (
                    "request_us_p90".into(),
                    opt(request_us.as_ref().and_then(|h| h.p90)),
                ),
                (
                    "request_us_p99".into(),
                    opt(request_us.as_ref().and_then(|h| h.p99)),
                ),
            ]),
        ),
        ("counters".into(), counters),
        ("gauges".into(), gauges),
        ("histograms".into(), histograms),
    ]);
    let path = results_dir().join("BENCH_serve.json");
    let text = serde_json::to_string_pretty(&doc).expect("serve doc serializes");
    std::fs::write(&path, text + "\n").expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
    let metrics = emit_metrics("perf_serve");
    println!("metrics: {}", metrics.display());
}
