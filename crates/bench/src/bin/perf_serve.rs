//! Load generator for the sharded serve engine (`crates/serve`).
//!
//! Three tiers, two output files (`results/BENCH_serve.json` and
//! `results/BENCH_scenario.json`):
//!
//! **Cache tier** — replays one request stream twice, first through a
//! sequential [`MatchingService`] loop (how PR-3 consumers called the
//! serving layer), then through [`ServeEngine`], and reports qps plus
//! worker-side p50/p90/p99 (from the `serve.request.ns` obs histogram,
//! reported in µs). The stream is skewed toward a small pool of repeating
//! *cold* keys: production cold traffic concentrates on newly launched
//! items going viral, and that repetition is exactly what the engine's
//! admission-gated cache converts from a full Eq. (6) scan into a hash
//! lookup. On a single-core host the speedup is therefore the cache (plus
//! per-shard pipelining), not parallelism.
//!
//! **Quantized tier** — a 100k-item catalog (synthesized from SI structure
//! without training; training at this scale is not a serving benchmark's
//! job) served all-cold with caching off, so every request pays the full
//! cold path. Compares `ColdPathMode::BruteForce` against
//! `ColdPathMode::QuantAnn` (int8 in-shard HNSW + exact f32 re-rank) and
//! reports qps, client-observed latency percentiles, recall@10 against the
//! brute-force ground truth, quantized bytes/item vs the f32 matrix, and
//! the streaming `dot_q8` vs f32 `dot` kernel ratio.
//!
//! **Scenario tier** — the multi-tenant matrix from `crates/scenario`:
//! four named tenant profiles (two under `--smoke`) replayed
//! deterministically against one tenanted engine, judged per tenant
//! against declared SLOs (p99 latency, shed rate, CTR). Writes
//! `results/BENCH_scenario.json` with per-tenant outcomes, verdicts, the
//! replay trace hash, and the obs snapshot.
//!
//! Scale knobs: `SISG_SERVE_ITEMS`, `SISG_SERVE_DIM`, `SISG_SERVE_REQS`,
//! `SISG_SERVE_SHARDS`, `SISG_QUANT_ITEMS`, `SISG_QUANT_REQS`,
//! `SISG_SEED`, `SISG_RESULTS`. `--smoke` runs a seconds-scale subset of
//! both tiers with the same output schema for CI validation
//! (`xtask validate-metrics`). The `reference` field preserves the
//! pre-quantization committed numbers: when the existing output file
//! carries no `reference`, the whole file becomes the reference of the
//! next write (the `perf_train` pattern).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use sisg_bench::{emit_metrics, env_u64, env_usize, results_dir};
use sisg_core::{MatchingService, ServingConfig, SisgModel, Variant};
use sisg_corpus::schema::SchemaCardinalities;
use sisg_corpus::vocab::TokenSpace;
use sisg_corpus::{CorpusConfig, GeneratedCorpus, ItemFeature, ItemId, UserRegistry};
use sisg_embedding::kernels::{dot, dot_q8};
use sisg_embedding::{EmbeddingStore, Matrix, QuantMatrix, QuantQuery, QuantRows};
use sisg_obs::Stopwatch;
use sisg_scenario::{
    adversarial_hot_key, head_heavy, run_scenario, standard_matrix, ScenarioConfig, TenantOutcome,
};
use sisg_serve::{
    ColdPathMode, ServeEngine, ServeEngineConfig, ServeRequest, ServingSnapshot, TenantId,
};
use sisg_sgns::SgnsConfig;

const K: usize = 10;
/// Layer-0 beam width of the quantized cold path; ≈ 10× k keeps recall
/// comfortably above the 0.95 gate at 100k items / 8 shards.
const QUANT_EF_SEARCH: usize = 96;

fn click_counts(corpus: &GeneratedCorpus) -> Vec<u64> {
    let mut clicks = vec![0u64; corpus.config.n_items as usize];
    for s in corpus.sessions.iter() {
        for it in s.items {
            clicks[it.index()] += 1;
        }
    }
    clicks
}

/// The skewed request stream: mostly repeating cold keys (the cacheable
/// regime), a warm slice, and a pinch of cold-user traffic.
fn build_stream(
    corpus: &GeneratedCorpus,
    service: &MatchingService,
    n_requests: usize,
    seed: u64,
) -> Vec<ServeRequest> {
    let all: Vec<ItemId> = (0..corpus.config.n_items).map(ItemId).collect();
    let cold_pool: Vec<ItemId> = all
        .iter()
        .copied()
        .filter(|&i| service.is_cold(i))
        .take(48)
        .collect();
    let warm_pool: Vec<ItemId> = all
        .iter()
        .copied()
        .filter(|&i| !service.is_cold(i))
        .take(256)
        .collect();
    // Only demographic combos the trained registry can actually answer.
    let user_pool: Vec<(Option<u8>, Option<u8>, Option<u8>)> = [
        (None, None, None),
        (Some(0), None, None),
        (Some(1), None, None),
        (None, Some(1), None),
        (None, None, Some(1)),
    ]
    .into_iter()
    .filter(|&(g, a, p)| service.cold_user_candidates(g, a, p, K).is_ok())
    .collect();
    eprintln!(
        "pools: {} cold items, {} warm items, {} cold-user keys",
        cold_pool.len(),
        warm_pool.len(),
        user_pool.len()
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E17);
    let candidates = |item: ItemId| ServeRequest::Candidates {
        item,
        si_values: *corpus.catalog.si_values(item),
        k: K,
    };
    (0..n_requests)
        .map(|_| {
            let roll: f64 = rng.gen();
            if roll < 0.75 && !cold_pool.is_empty() {
                candidates(cold_pool[rng.gen_range(0..cold_pool.len())])
            } else if roll < 0.95 && !warm_pool.is_empty() {
                candidates(warm_pool[rng.gen_range(0..warm_pool.len())])
            } else if !user_pool.is_empty() {
                let (gender, age, purchase) = user_pool[rng.gen_range(0..user_pool.len())];
                ServeRequest::ColdUser {
                    gender,
                    age,
                    purchase,
                    k: K,
                }
            } else {
                candidates(all[rng.gen_range(0..all.len())])
            }
        })
        .collect()
}

/// The pre-engine serving path: one thread, one `MatchingService`, no
/// cache — every repeated cold key pays the full Eq. (6) scan again.
fn run_sequential(service: &MatchingService, stream: &[ServeRequest]) -> f64 {
    let watch = Stopwatch::start();
    for req in stream {
        match *req {
            ServeRequest::Candidates { item, si_values, k } => {
                let out = service
                    .candidates(item, &si_values, k)
                    .expect("stream items are in the catalog");
                std::hint::black_box(out);
            }
            ServeRequest::ColdUser {
                gender,
                age,
                purchase,
                k,
            } => {
                let out = service
                    .cold_user_candidates(gender, age, purchase, k)
                    .expect("stream demographics match");
                std::hint::black_box(out);
            }
        }
    }
    watch.elapsed_seconds()
}

/// Drives the engine in queue-sized batches: each chunk fits a single
/// shard's bounded queue even in the worst routing skew, so nothing sheds
/// and the measurement is pure serve throughput.
fn run_engine(engine: &ServeEngine, stream: &[ServeRequest], chunk: usize) -> f64 {
    let watch = Stopwatch::start();
    for batch in stream.chunks(chunk) {
        for result in engine.serve_batch(batch.iter().copied()) {
            let out = result.expect("chunks fit the bounded queues");
            std::hint::black_box(out);
        }
    }
    watch.elapsed_seconds()
}

/// One blocking request at a time, stopwatch around each: client-observed
/// cold-path latency in µs, for percentile reporting.
fn run_engine_latencies(engine: &ServeEngine, stream: &[ServeRequest]) -> Vec<f64> {
    stream
        .iter()
        .map(|req| {
            let watch = Stopwatch::start();
            let out = engine.serve(*req).expect("request is servable");
            std::hint::black_box(out);
            watch.elapsed_seconds() * 1e6
        })
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Synthesizes a serving artifact of `n_items` cold items at `dim` dims
/// without training: every SI token keeps its word2vec-style random init,
/// and each item's input vector is the sum of its SI token vectors plus
/// item-specific noise. Items sharing a shop/brand/category therefore
/// cluster — the structure Eq. (6) cold inference exploits — while every
/// item stays distinct. All click counts are zero, so the whole catalog is
/// cold and every request exercises the cold path under test.
fn synth_cold_service(
    n_items: u32,
    dim: usize,
    seed: u64,
) -> (MatchingService, Vec<[u32; ItemFeature::COUNT]>) {
    let cards = SchemaCardinalities::for_items(n_items);
    let users = UserRegistry::generate(64, 4, seed);
    let space = TokenSpace::new(n_items, &cards, users.n_user_types());
    let mut store = EmbeddingStore::new(space.len(), dim, seed);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xA11C);
    let si_values: Vec<[u32; ItemFeature::COUNT]> = (0..n_items)
        .map(|_| {
            let mut vals = [0u32; ItemFeature::COUNT];
            for feature in ItemFeature::ALL {
                vals[feature.slot()] = rng.gen_range(0..cards.cardinality(feature));
            }
            vals
        })
        .collect();

    for (i, vals) in si_values.iter().enumerate() {
        let mut row = vec![0.0f32; dim];
        for feature in ItemFeature::ALL {
            let token = space.side_info(feature, vals[feature.slot()]);
            let si_row = store.input(token);
            for (r, &v) in row.iter_mut().zip(si_row) {
                *r += v;
            }
        }
        for r in row.iter_mut() {
            // Noise at the scale of one SI vector component keeps items
            // sharing all eight SI values from collapsing onto one point.
            *r += (rng.gen::<f32>() - 0.5) / dim as f32;
        }
        store.input_matrix_mut().row_mut(i).copy_from_slice(&row);
    }

    let model = SisgModel::from_store(Variant::SisgFU, space, store)
        .expect("synthesized store covers the space");
    let service = MatchingService::build(
        model,
        users,
        &vec![0u64; n_items as usize],
        ServingConfig {
            k: K,
            min_clicks_for_warm: 1,
        },
    )
    .expect("valid serving config");
    (service, si_values)
}

/// Uniform all-cold request stream over the synthesized catalog.
fn quant_stream(
    si_values: &[[u32; ItemFeature::COUNT]],
    n_requests: usize,
    seed: u64,
) -> Vec<ServeRequest> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0AA7);
    (0..n_requests)
        .map(|_| {
            let item = rng.gen_range(0..si_values.len());
            ServeRequest::Candidates {
                item: ItemId(item as u32),
                si_values: si_values[item],
                k: K,
            }
        })
        .collect()
}

/// Streaming kernel comparison over a working set far larger than L2:
/// scores every row of an `n × dim` matrix against one query, f32 `dot`
/// vs int8 `dot_q8`. Returns (f32 ns/dot, q8 ns/dot). The quantized win
/// is bandwidth: the int8 matrix is ~4× smaller, so at memory-bound
/// shapes the ratio approaches 4×.
fn kernel_bench(rows: usize, dim: usize, seed: u64) -> (f64, f64) {
    let matrix = Matrix::uniform_init(rows, dim, seed ^ 0xD07);
    let qmatrix = QuantMatrix::from_matrix(&matrix);
    let query: Vec<f32> = (0..dim).map(|i| ((i as f32).sin() * 0.1) + 0.05).collect();
    let qquery = QuantQuery::new(&query);

    let reps = (2_000_000 / rows).max(1);
    let time = |f: &mut dyn FnMut() -> f32| {
        let watch = Stopwatch::start();
        let mut acc = 0.0f32;
        for _ in 0..reps {
            acc += f();
        }
        std::hint::black_box(acc);
        watch.elapsed_seconds() * 1e9 / (reps * rows) as f64
    };

    let f32_ns = time(&mut || {
        let mut acc = 0.0f32;
        for i in 0..rows {
            acc += dot(matrix.row(i), &query);
        }
        acc
    });
    let q8_ns = time(&mut || {
        let mut acc = 0.0f32;
        for i in 0..rows {
            acc += dot_q8(
                qmatrix.row(i),
                qquery.weights(),
                qmatrix.scale(i) * qquery.scale(),
            );
        }
        acc
    });
    (f32_ns, q8_ns)
}

/// Mean recall@k of the engine's answers against per-query ground truth.
fn recall_against(engine: &ServeEngine, queries: &[(ServeRequest, Vec<ItemId>)]) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for (req, truth) in queries {
        let resp = engine.serve(*req).expect("query is servable");
        hit += resp
            .recommendations
            .iter()
            .filter(|r| truth.contains(&r.item))
            .count();
        total += truth.len();
    }
    hit as f64 / total.max(1) as f64
}

/// Reads the `reference` section out of the existing output file. A file
/// from before the quantized tier carries no `reference`; its entire
/// content *is* the pre-change baseline, so it becomes the reference.
fn load_reference(path: &std::path::Path) -> Value {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Value::Null;
    };
    let Ok(doc) = serde_json::from_str::<Value>(&text) else {
        return Value::Null;
    };
    match doc.get_field("reference") {
        Ok(Value::Null) | Err(_) => doc,
        Ok(reference) => reference.clone(),
    }
}

fn snapshot_to_value(snap: &sisg_obs::Snapshot) -> (Value, Value, Value) {
    let counters = Value::Object(
        snap.counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::U64(*v)))
            .collect(),
    );
    let gauges = Value::Object(
        snap.gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::F64(*v)))
            .collect(),
    );
    let opt = |v: Option<f64>| v.map_or(Value::Null, Value::F64);
    let histograms = Value::Object(
        snap.histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Value::Object(vec![
                        ("count".into(), Value::U64(h.count)),
                        ("sum".into(), Value::U64(h.sum)),
                        ("max".into(), Value::U64(h.max)),
                        ("p50".into(), opt(h.p50)),
                        ("p90".into(), opt(h.p90)),
                        ("p99".into(), opt(h.p99)),
                    ]),
                )
            })
            .collect(),
    );
    (counters, gauges, histograms)
}

/// The quantized 100k-item tier. Returns its JSON section.
fn run_quant_tier(
    n_items: u32,
    dim: usize,
    n_requests: usize,
    n_shards: usize,
    seed: u64,
) -> Value {
    eprintln!("quant tier: synthesizing {n_items} cold items at dim {dim}");
    let (service, si_values) = synth_cold_service(n_items, dim, seed);

    // Ground truth for recall@10: the exact brute-force answers, computed
    // through the direct service before it moves into an engine.
    let n_samples = (n_items as usize / 100).clamp(50, 200);
    let sample_step = (si_values.len() / n_samples).max(1);
    let recall_queries: Vec<(ServeRequest, Vec<ItemId>)> = (0..n_samples)
        .map(|s| {
            let item = ItemId((s * sample_step) as u32);
            let truth: Vec<ItemId> = service
                .candidates(item, &si_values[item.index()], K)
                .expect("sampled item is in the catalog")
                .into_iter()
                .map(|r| r.item)
                .collect();
            (
                ServeRequest::Candidates {
                    item,
                    si_values: si_values[item.index()],
                    k: K,
                },
                truth,
            )
        })
        .collect();

    // Sequential brute-force baseline over a bounded slice (each request
    // is a full catalog scan; the slice keeps the tier seconds-scale).
    let stream = quant_stream(&si_values, n_requests, seed);
    let n_seq = stream.len().min(1_000);
    let seq_seconds = run_sequential(&service, &stream[..n_seq]);
    let seq_qps = n_seq as f64 / seq_seconds;
    eprintln!("quant tier: sequential brute force {seq_qps:.0} qps ({n_seq} reqs)");

    // Quantized memory accounting, from a directly-built snapshot.
    let (mem_service, _) = synth_cold_service(n_items, dim, seed);
    let inspect = ServingSnapshot::from_service_with(
        mem_service,
        n_shards,
        ColdPathMode::QuantAnn {
            ef_search: QUANT_EF_SEARCH,
        },
    );
    let cold_index = inspect.cold_index().expect("quant snapshot built");
    let bytes_per_item = cold_index.bytes_per_item();
    let link_bytes_per_item = cold_index.link_bytes() as f64 / f64::from(n_items);
    let f32_bytes_per_item = dim * std::mem::size_of::<f32>();
    drop(inspect);

    // Engine A: brute-force cold path, cache off.
    let engine_section = |engine: &ServeEngine, stream: &[ServeRequest]| {
        let lat_slice = &stream[..stream.len().min(400)];
        let mut lat = run_engine_latencies(engine, lat_slice);
        lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let seconds = run_engine(engine, stream, 256);
        let qps = stream.len() as f64 / seconds;
        (
            qps,
            Value::Object(vec![
                ("requests".into(), Value::U64(stream.len() as u64)),
                ("seconds".into(), Value::F64(seconds)),
                ("qps".into(), Value::F64(qps)),
                ("p50_us".into(), Value::F64(percentile(&lat, 0.50))),
                ("p99_us".into(), Value::F64(percentile(&lat, 0.99))),
            ]),
        )
    };
    let brute_config = ServeEngineConfig::builder()
        .n_shards(n_shards)
        .queue_capacity(256)
        .cache_capacity(0)
        .build()
        .expect("valid engine config");
    let brute_engine = ServeEngine::start(service, brute_config).expect("engine starts");
    let (brute_qps, brute_section) = engine_section(&brute_engine, &stream);
    let brute_recall = recall_against(&brute_engine, &recall_queries);
    drop(brute_engine);
    eprintln!("quant tier: brute engine {brute_qps:.0} qps, recall {brute_recall:.3}");

    // Engine B: quantized in-shard ANN + exact f32 re-rank, cache off.
    let (quant_service, _) = synth_cold_service(n_items, dim, seed);
    let quant_config = ServeEngineConfig::builder()
        .n_shards(n_shards)
        .queue_capacity(256)
        .cache_capacity(0)
        .cold_path(ColdPathMode::QuantAnn {
            ef_search: QUANT_EF_SEARCH,
        })
        .build()
        .expect("valid engine config");
    let build_watch = Stopwatch::start();
    let quant_engine = ServeEngine::start(quant_service, quant_config).expect("engine starts");
    let index_build_seconds = build_watch.elapsed_seconds();
    let (quant_qps, quant_section) = engine_section(&quant_engine, &stream);
    let recall = recall_against(&quant_engine, &recall_queries);
    drop(quant_engine);
    eprintln!(
        "quant tier: quant engine {quant_qps:.0} qps ({:.1}x brute), recall@{K} {recall:.3}, \
         {bytes_per_item} B/item vs {f32_bytes_per_item} B/item f32",
        quant_qps / brute_qps
    );

    let (f32_ns, q8_ns) = kernel_bench(n_items as usize, dim, seed);
    eprintln!(
        "kernel: f32 dot {f32_ns:.2} ns, dot_q8 {q8_ns:.2} ns ({:.2}x) at d{dim}",
        f32_ns / q8_ns
    );

    Value::Object(vec![
        ("items".into(), Value::U64(u64::from(n_items))),
        ("dim".into(), Value::U64(dim as u64)),
        ("requests".into(), Value::U64(stream.len() as u64)),
        ("shards".into(), Value::U64(n_shards as u64)),
        ("ef_search".into(), Value::U64(QUANT_EF_SEARCH as u64)),
        ("k".into(), Value::U64(K as u64)),
        ("recall_at_10".into(), Value::F64(recall)),
        ("brute_recall_at_10".into(), Value::F64(brute_recall)),
        (
            "bytes_per_item_quant".into(),
            Value::U64(bytes_per_item as u64),
        ),
        (
            "bytes_per_item_f32".into(),
            Value::U64(f32_bytes_per_item as u64),
        ),
        (
            "memory_ratio".into(),
            Value::F64(bytes_per_item as f64 / f32_bytes_per_item as f64),
        ),
        (
            "link_bytes_per_item".into(),
            Value::F64(link_bytes_per_item),
        ),
        (
            "index_build_seconds".into(),
            Value::F64(index_build_seconds),
        ),
        (
            "sequential_brute".into(),
            Value::Object(vec![
                ("requests".into(), Value::U64(n_seq as u64)),
                ("seconds".into(), Value::F64(seq_seconds)),
                ("qps".into(), Value::F64(seq_qps)),
            ]),
        ),
        ("engine_brute".into(), brute_section),
        ("engine_quant".into(), quant_section),
        (
            "kernel".into(),
            Value::Object(vec![
                ("f32_ns_per_dot".into(), Value::F64(f32_ns)),
                ("q8_ns_per_dot".into(), Value::F64(q8_ns)),
                ("speedup".into(), Value::F64(f32_ns / q8_ns)),
            ]),
        ),
    ])
}

/// One tenant's scenario outcome as a JSON section: traffic accounting,
/// per-tenant p99/shed/CTR, and the SLO verdict.
fn tenant_section(t: &TenantOutcome) -> Value {
    Value::Object(vec![
        ("tenant_id".into(), Value::U64(u64::from(t.tenant_id))),
        ("label".into(), Value::Str(t.label.clone())),
        ("submitted".into(), Value::U64(t.submitted)),
        ("completed".into(), Value::U64(t.completed)),
        ("shed".into(), Value::U64(t.shed)),
        ("shed_rate".into(), Value::F64(t.shed_rate)),
        (
            "p99_latency_us".into(),
            Value::F64(t.p99_latency_ns / 1_000.0),
        ),
        ("shown".into(), Value::U64(t.shown)),
        ("clicks".into(), Value::U64(t.clicks)),
        ("ctr".into(), Value::F64(t.ctr)),
        ("warm_hits".into(), Value::U64(t.warm_hits)),
        (
            "cold_item_requests".into(),
            Value::U64(t.cold_item_requests),
        ),
        (
            "cold_user_requests".into(),
            Value::U64(t.cold_user_requests),
        ),
        ("cache_hits".into(), Value::U64(t.cache_hits)),
        (
            "slo".into(),
            Value::Object(vec![
                (
                    "p99_latency_us".into(),
                    Value::F64(t.slo.p99_latency_ns / 1_000.0),
                ),
                ("max_shed_rate".into(), Value::F64(t.slo.max_shed_rate)),
                ("min_ctr".into(), Value::F64(t.slo.min_ctr)),
            ]),
        ),
        (
            "verdict".into(),
            Value::Object(vec![
                ("latency_ok".into(), Value::Bool(t.verdict.latency_ok)),
                ("shed_ok".into(), Value::Bool(t.verdict.shed_ok)),
                ("ctr_ok".into(), Value::Bool(t.verdict.ctr_ok)),
                ("all_ok".into(), Value::Bool(t.verdict.all_ok())),
            ]),
        ),
    ])
}

/// The multi-tenant scenario tier: the standard four-tenant matrix (a
/// two-tenant subset under `--smoke`) replayed against one tenanted
/// engine via `sisg_scenario::run_scenario`, then written as
/// `results/BENCH_scenario.json`. Deterministic per seed: the committed
/// full-matrix file pins the trace hash and every per-tenant count.
fn run_scenario_tier(corpus: &GeneratedCorpus, smoke: bool, seed: u64) {
    let profiles = if smoke {
        vec![head_heavy(TenantId(1)), adversarial_hot_key(TenantId(2))]
    } else {
        standard_matrix()
    };
    let ticks = if smoke {
        16
    } else {
        env_usize("SISG_SCENARIO_TICKS", 48) as u32
    };
    eprintln!(
        "scenario tier: {} tenants, {ticks} ticks, seed {seed}",
        profiles.len()
    );

    // A fresh deterministic artifact with a real cold tail, so every
    // request class in the tenant mixes is exercised.
    let (model, _) = SisgModel::train(
        corpus,
        Variant::SisgFU,
        &SgnsConfig {
            dim: 16,
            window: 3,
            negatives: 3,
            epochs: 1,
            threads: 1,
            seed,
            ..Default::default()
        },
    )
    .expect("valid training config");
    let service = MatchingService::build(
        model,
        corpus.users.clone(),
        &click_counts(corpus),
        ServingConfig {
            k: 20,
            min_clicks_for_warm: 3,
        },
    )
    .expect("valid serving config");
    let config = sisg_scenario::engine_config(&profiles).expect("tenant matrix validates");
    let engine = ServeEngine::start(service, config).expect("engine starts");
    let report = run_scenario(corpus, &engine, &profiles, &ScenarioConfig { ticks, seed })
        .expect("scenario runs");
    drop(engine);

    for t in &report.tenants {
        println!(
            "scenario tenant {}: {} submitted, {} shed (rate {:.3}), p99 {:.1}us, \
             ctr {:.4}, verdict latency={} shed={} ctr={}",
            t.label,
            t.submitted,
            t.shed,
            t.shed_rate,
            t.p99_latency_ns / 1_000.0,
            t.ctr,
            t.verdict.latency_ok,
            t.verdict.shed_ok,
            t.verdict.ctr_ok
        );
    }

    let snap = sisg_obs::registry().snapshot("perf_scenario");
    let (counters, gauges, histograms) = snapshot_to_value(&snap);
    let out_path = results_dir().join("BENCH_scenario.json");
    let reference = load_reference(&out_path);
    let doc = Value::Object(vec![
        ("name".into(), Value::Str("perf_scenario".into())),
        (
            "workload".into(),
            Value::Object(vec![
                ("tenants".into(), Value::U64(report.tenants.len() as u64)),
                ("ticks".into(), Value::U64(u64::from(report.ticks))),
                ("seed".into(), Value::U64(report.seed)),
                ("smoke".into(), Value::Bool(smoke)),
            ]),
        ),
        (
            "trace_hash".into(),
            Value::Str(format!("{:016x}", report.trace_hash)),
        ),
        (
            "tenants".into(),
            Value::Object(
                report
                    .tenants
                    .iter()
                    .map(|t| (t.label.clone(), tenant_section(t)))
                    .collect(),
            ),
        ),
        ("counters".into(), counters),
        ("gauges".into(), gauges),
        ("histograms".into(), histograms),
        ("reference".into(), reference),
    ]);
    let text = serde_json::to_string_pretty(&doc).expect("scenario doc serializes");
    std::fs::write(&out_path, text + "\n").expect("write BENCH_scenario.json");
    println!("wrote {}", out_path.display());
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_items, dim, n_requests) = if smoke {
        (400u32, 16usize, 3_000usize)
    } else {
        (
            env_usize("SISG_SERVE_ITEMS", 2_400) as u32,
            env_usize("SISG_SERVE_DIM", 64),
            env_usize("SISG_SERVE_REQS", 24_000),
        )
    };
    let (quant_items, quant_dim, quant_requests) = if smoke {
        (6_000u32, 32usize, 600usize)
    } else {
        (
            env_usize("SISG_QUANT_ITEMS", 100_000) as u32,
            env_usize("SISG_SERVE_DIM", 64),
            env_usize("SISG_QUANT_REQS", 4_000),
        )
    };
    let n_shards = env_usize("SISG_SERVE_SHARDS", 8);
    let queue_capacity = 256;
    let seed = env_u64("SISG_SEED", 42);

    eprintln!("training artifact: {n_items} items, dim {dim}");
    let corpus = GeneratedCorpus::generate(CorpusConfig::scaled(n_items, seed));
    let (model, _) = SisgModel::train(
        &corpus,
        Variant::SisgFU,
        &SgnsConfig {
            dim,
            window: 2,
            negatives: 2,
            epochs: 1,
            threads: 1,
            seed,
            ..Default::default()
        },
    )
    .expect("valid training config");
    let service = MatchingService::build(
        model,
        corpus.users.clone(),
        &click_counts(&corpus),
        ServingConfig {
            k: 32,
            min_clicks_for_warm: 3,
        },
    )
    .expect("valid serving config");
    eprintln!(
        "artifact: {} items, {:.1}% cold",
        service.n_items(),
        service.cold_fraction() * 100.0
    );

    let stream = build_stream(&corpus, &service, n_requests, seed);

    let seq_seconds = run_sequential(&service, &stream);
    let seq_qps = stream.len() as f64 / seq_seconds;
    println!(
        "sequential MatchingService loop: {} reqs in {seq_seconds:.3}s = {seq_qps:.0} qps",
        stream.len()
    );

    let config = ServeEngineConfig::builder()
        .n_shards(n_shards)
        .queue_capacity(queue_capacity)
        .cache_capacity(4096)
        .cache_admit_after(1)
        .build()
        .expect("valid engine config");
    let engine = ServeEngine::start(service, config).expect("engine starts");
    let engine_seconds = run_engine(&engine, &stream, queue_capacity);
    let engine_qps = stream.len() as f64 / engine_seconds;
    let speedup = engine_qps / seq_qps;
    let stats = engine.stats();
    println!(
        "serve engine ({n_shards} shards): {} reqs in {engine_seconds:.3}s = {engine_qps:.0} qps \
         ({speedup:.1}x sequential, {} cache hits / {} misses)",
        stream.len(),
        stats.cache_hits,
        stats.cache_misses
    );
    drop(engine);

    // The worker-side latency histogram records nanoseconds (a whole-µs
    // histogram collapses sub-µs cache hits into bucket 0, zeroing every
    // percentile); report µs. Snapshot now, before the quantized tier adds
    // its own traffic to the histogram.
    let cache_snap = sisg_obs::registry().snapshot("perf_serve_cache_tier");
    let request_ns = cache_snap
        .histograms
        .iter()
        .find(|(k, _)| k == "serve.request.ns")
        .map(|(_, h)| h.clone());
    let ns_to_us = |v: Option<f64>| v.map_or(Value::Null, |ns| Value::F64(ns / 1_000.0));
    if let Some(h) = &request_ns {
        println!(
            "worker latency (us): p50 {:?} p90 {:?} p99 {:?} max {:.3}",
            h.p50.map(|v| v / 1_000.0),
            h.p90.map(|v| v / 1_000.0),
            h.p99.map(|v| v / 1_000.0),
            h.max as f64 / 1_000.0
        );
    }

    let quantized = run_quant_tier(quant_items, quant_dim, quant_requests, n_shards, seed);

    let snap = sisg_obs::registry().snapshot("perf_serve");
    let (counters, gauges, histograms) = snapshot_to_value(&snap);
    let out_path = results_dir().join("BENCH_serve.json");
    let reference = load_reference(&out_path);
    let doc = Value::Object(vec![
        ("name".into(), Value::Str("perf_serve".into())),
        (
            "workload".into(),
            Value::Object(vec![
                ("items".into(), Value::U64(u64::from(n_items))),
                ("dim".into(), Value::U64(dim as u64)),
                ("requests".into(), Value::U64(stream.len() as u64)),
                ("k".into(), Value::U64(K as u64)),
                ("smoke".into(), Value::Bool(smoke)),
            ]),
        ),
        (
            "sequential".into(),
            Value::Object(vec![
                ("seconds".into(), Value::F64(seq_seconds)),
                ("qps".into(), Value::F64(seq_qps)),
            ]),
        ),
        (
            "engine".into(),
            Value::Object(vec![
                ("shards".into(), Value::U64(n_shards as u64)),
                ("queue_capacity".into(), Value::U64(queue_capacity as u64)),
                ("seconds".into(), Value::F64(engine_seconds)),
                ("qps".into(), Value::F64(engine_qps)),
                ("speedup_vs_sequential".into(), Value::F64(speedup)),
                ("cache_hits".into(), Value::U64(stats.cache_hits)),
                ("cache_misses".into(), Value::U64(stats.cache_misses)),
                ("overloaded".into(), Value::U64(stats.overloaded)),
                (
                    "request_us_p50".into(),
                    ns_to_us(request_ns.as_ref().and_then(|h| h.p50)),
                ),
                (
                    "request_us_p90".into(),
                    ns_to_us(request_ns.as_ref().and_then(|h| h.p90)),
                ),
                (
                    "request_us_p99".into(),
                    ns_to_us(request_ns.as_ref().and_then(|h| h.p99)),
                ),
            ]),
        ),
        ("quantized".into(), quantized),
        ("counters".into(), counters),
        ("gauges".into(), gauges),
        ("histograms".into(), histograms),
        ("reference".into(), reference),
    ]);
    let text = serde_json::to_string_pretty(&doc).expect("serve doc serializes");
    std::fs::write(&out_path, text + "\n").expect("write BENCH_serve.json");
    println!("wrote {}", out_path.display());

    run_scenario_tier(&corpus, smoke, seed);

    let metrics = emit_metrics("perf_serve");
    println!("metrics: {}", metrics.display());
}
