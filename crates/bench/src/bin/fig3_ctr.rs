//! Regenerates **Figure 3**: simulated online CTR of SISG-F-U-D vs the
//! well-tuned CF baseline over eight days, sharing one ranker.
//!
//! The paper reports a 10.01% CTR improvement for SISG; the reproduction
//! must show SISG above CF on every day, with a double-digit-ish relative
//! gain.

use sisg_bench::{env_u64, env_usize, offline_sgns_config, results_dir};
use sisg_cf::{CfConfig, CfModel};
use sisg_core::{SisgModel, Variant};
use sisg_eval::ctr::{simulate_ab_test, CandidateSource, CtrConfig};
use sisg_eval::ExperimentTable;

fn main() {
    // Sparser than the Table III corpus (half the clicks per item): the
    // homepage serves the full catalog, most of which is long-tail — the
    // regime the paper built SISG for.
    let items = env_usize("SISG_ITEMS", 2_000) as u32;
    let mut config = sisg_corpus::CorpusConfig::scaled(items, env_u64("SISG_SEED", 42));
    config.n_sessions /= 4;
    let corpus = sisg_corpus::GeneratedCorpus::generate(config);
    let sgns = offline_sgns_config();
    eprintln!("training SISG-F-U-D...");
    let (sisg, _) = SisgModel::train(&corpus, Variant::SisgFUD, &sgns).expect("train");
    eprintln!("training well-tuned CF...");
    let cf = CfModel::train(
        &corpus.sessions,
        corpus.config.n_items,
        &CfConfig::default(),
    );

    let sources = [
        CandidateSource {
            name: "SISG-F-U-D".into(),
            retriever: &sisg,
        },
        CandidateSource {
            name: "CF".into(),
            retriever: &cf,
        },
    ];
    // Diagnostic: candidate-set quality per arm (mean true propensity and
    // share of funnel-backward candidates), before any ranking.
    {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        use sisg_eval::ctr::click_propensity;
        use sisg_eval::ItemRetriever;
        let mut pop = vec![0u64; corpus.config.n_items as usize];
        for s in corpus.sessions.iter() {
            for &it in s.items {
                pop[it.index()] += 1;
            }
        }
        let mut fwd = 0u64;
        let mut tot = 0u64;
        for s in corpus.sessions.iter() {
            for w in s.items.windows(2) {
                tot += 1;
                if corpus.catalog.is_forward(w[0], w[1]) {
                    fwd += 1;
                }
            }
        }
        eprintln!(
            "corpus forward-transition share: {:.1}%",
            100.0 * fwd as f64 / tot as f64
        );
        let mut rng = StdRng::seed_from_u64(9);
        for (name, model) in [("SISG", &sisg as &dyn ItemRetriever), ("CF", &cf)] {
            let mut mean_p = 0.0;
            let mut backward = 0u32;
            let mut n = 0u32;
            for _ in 0..300 {
                let s = corpus
                    .sessions
                    .session(rng.gen_range(0..corpus.sessions.len()));
                let pos = rng.gen_range(0..s.len());
                let (user, ctx) = (s.user, s.items[pos]);
                for c in model.retrieve(ctx, 10) {
                    mean_p += click_propensity(&corpus, &pop, user, ctx, c);
                    if !corpus.catalog.is_forward(ctx, c) {
                        backward += 1;
                    }
                    n += 1;
                }
            }
            eprintln!(
                "{name}: mean candidate propensity {:.4}, backward share {:.1}%",
                mean_p / n as f64,
                100.0 * backward as f64 / n as f64
            );
        }
    }

    let config = CtrConfig::default();
    eprintln!(
        "simulating {} days x {} impressions...",
        config.days, config.impressions_per_day
    );
    let series = simulate_ab_test(&corpus, &sources, &config);

    let mut table = ExperimentTable::new(
        "Figure 3 — daily CTR, SISG-F-U-D vs well-tuned CF (simulated A/B)",
        &["day", "SISG-F-U-D", "CF", "relative gain"],
    );
    for day in 0..config.days {
        let (a, b) = (series[0].daily_ctr[day], series[1].daily_ctr[day]);
        table.push_row(vec![
            format!("{}", day + 1),
            format!("{a:.4}"),
            format!("{b:.4}"),
            format!("{:+.2}%", (a - b) / b * 100.0),
        ]);
    }
    print!("{}", table.render());

    let (ma, mb) = (series[0].mean(), series[1].mean());
    let gain = (ma - mb) / mb * 100.0;
    println!("\nmean CTR: SISG {ma:.4}, CF {mb:.4} -> improvement {gain:+.2}%");
    println!("paper reference: +10.01% over the same 8-day window");
    let wins = (0..config.days)
        .filter(|&d| series[0].daily_ctr[d] > series[1].daily_ctr[d])
        .count();
    println!("SISG wins {wins}/{} days", config.days);

    let path = results_dir().join("fig3_ctr.json");
    table.write_json(&path).expect("write results");
    let metrics = sisg_bench::emit_metrics("fig3_ctr");
    println!("wrote {} and {}", path.display(), metrics.display());
}
