//! Regenerates **Figure 4**: cold-start recommendations for different
//! demographic user groups, via averaged user-type vectors.
//!
//! The figure's claims: female and male users get visibly different lists;
//! higher purchasing power shifts recommendations toward expensive-brand
//! items; age groups differ, most strongly among male users.

use sisg_bench::{describe_item, offline_corpus, offline_sgns_config, results_dir};
use sisg_core::cold_start::cold_user_recommendations;
use sisg_core::{SisgModel, Variant};
use sisg_eval::ExperimentTable;
use std::collections::HashSet;

const TOP_K: usize = 8;

fn main() {
    let corpus = offline_corpus();
    let sgns = offline_sgns_config();
    eprintln!("training SISG-F-U...");
    let (model, _) = SisgModel::train(&corpus, Variant::SisgFU, &sgns).expect("train");

    // The groups Figure 4 displays: gender × age × purchase power.
    type Group = (String, Option<u8>, Option<u8>, Option<u8>);
    let groups: Vec<Group> = vec![
        ("female 19-25 low-pp".into(), Some(0), Some(1), Some(0)),
        ("female 19-25 high-pp".into(), Some(0), Some(1), Some(2)),
        ("female 26-30 high-pp".into(), Some(0), Some(2), Some(2)),
        ("male 19-25 low-pp".into(), Some(1), Some(1), Some(0)),
        ("male 26-30 high-pp".into(), Some(1), Some(2), Some(2)),
        ("male 61+ any-pp".into(), Some(1), Some(6), None),
    ];

    let mut table = ExperimentTable::new(
        "Figure 4 — cold-start recommendations per user group",
        &["group", "rank", "recommendation"],
    );
    let mut lists: Vec<(String, Vec<u32>)> = Vec::new();
    for (name, gender, age, pp) in &groups {
        match cold_user_recommendations(&model, &corpus.users, *gender, *age, *pp, TOP_K) {
            Ok(recs) => {
                lists.push((name.clone(), recs.iter().map(|n| n.token.0).collect()));
                for (rank, n) in recs.iter().enumerate() {
                    table.push_row(vec![
                        name.clone(),
                        (rank + 1).to_string(),
                        describe_item(&corpus, sisg_corpus::ItemId(n.token.0)),
                    ]);
                }
            }
            Err(e) => {
                eprintln!("group '{name}' skipped: {e}");
            }
        }
    }
    print!("{}", table.render());

    // Quantify the figure's claim: groups differ.
    let mut overlap_table = ExperimentTable::new(
        "pairwise overlap of top-8 lists (low = distinct tastes)",
        &["group A", "group B", "overlap"],
    );
    for i in 0..lists.len() {
        for j in (i + 1)..lists.len() {
            let a: HashSet<u32> = lists[i].1.iter().copied().collect();
            let b: HashSet<u32> = lists[j].1.iter().copied().collect();
            overlap_table.push_row(vec![
                lists[i].0.clone(),
                lists[j].0.clone(),
                format!("{}/{TOP_K}", a.intersection(&b).count()),
            ]);
        }
    }
    print!("\n{}", overlap_table.render());

    // Gender split specifically (the figure's most visible contrast).
    let female: HashSet<u32> = lists
        .iter()
        .filter(|(n, _)| n.starts_with("female"))
        .flat_map(|(_, l)| l.iter().copied())
        .collect();
    let male: HashSet<u32> = lists
        .iter()
        .filter(|(n, _)| n.starts_with("male"))
        .flat_map(|(_, l)| l.iter().copied())
        .collect();
    let cross = female.intersection(&male).count();
    println!(
        "\nfemale-pool {} items, male-pool {} items, shared {cross} \
         (paper: 'differences between female and male users are obvious')",
        female.len(),
        male.len()
    );

    let path = results_dir().join("fig4_cold_users.json");
    table.write_json(&path).expect("write results");
    let metrics = sisg_bench::emit_metrics("fig4_cold_users");
    println!("wrote {} and {}", path.display(), metrics.display());
}
