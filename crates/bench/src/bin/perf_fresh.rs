//! Freshness benchmark for the streaming ingest pipeline
//! (`crates/stream`): how quickly does a click become servable, and what
//! is recency worth in hit rate?
//!
//! One output file (`results/BENCH_fresh.json`), one scenario:
//!
//! 1. A scaled corpus is split at a virtual day boundary — the first 60%
//!    of sessions are **today**, the rest are **tomorrow**. The pipeline
//!    warm-starts on today and a serve engine boots from that frozen
//!    snapshot.
//! 2. The frozen snapshot's HR@10 is measured on the tomorrow slice
//!    under the paper's next-item protocol (`NextItemSplit`, Eq. 5) —
//!    each tomorrow sequence's last click is held out, so the eval
//!    targets never reach training in either condition.
//! 3. Tomorrow's *prefixes* then replay through `run_live`: a producer
//!    thread streams batches over a bounded channel while the pipeline
//!    folds incremental SGNS updates and publishes snapshots through
//!    `ServeEngine::install` — all while query threads hammer the same
//!    engine. The benchmark asserts zero hard failures under this
//!    concurrent swap load (`Overloaded` sheds are tolerated and
//!    reported; anything else fails the run).
//! 4. Reported: p50/p90/p99 event-to-servable freshness (from the
//!    `stream.freshness.us` histogram, real microseconds in live mode),
//!    ingest throughput, concurrent query qps + client latency
//!    percentiles, swap/cache-clear accounting, and frozen-vs-fresh
//!    HR@10 on the identical tomorrow cases.
//!
//! Scale knobs: `SISG_FRESH_ITEMS`, `SISG_FRESH_DIM`,
//! `SISG_FRESH_THREADS`, `SISG_FRESH_SHARDS`, `SISG_SEED`,
//! `SISG_RESULTS`. `--smoke` runs a seconds-scale subset with the same
//! output schema for CI validation (`xtask validate-metrics`). The
//! `reference` field preserves the first committed numbers (the
//! `perf_serve` pattern).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use sisg_bench::{emit_metrics, env_u64, env_usize, results_dir};
use sisg_core::{ServingConfig, Variant};
use sisg_corpus::split::{NextItemSplit, SplitStage};
use sisg_corpus::{Corpus, CorpusConfig, EventLog, GeneratedCorpus, ItemId};
use sisg_eval::evaluate_hit_rates;
use sisg_obs::Stopwatch;
use sisg_serve::{ServeEngine, ServeEngineConfig, ServeError, ServeRequest};
use sisg_sgns::SgnsConfig;
use sisg_stream::{IngestPipeline, StreamConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

const K: usize = 10;
/// Fraction of sessions that belong to "today" (the warm-start set).
const TODAY_FRACTION: f64 = 0.6;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Reads the `reference` section out of the existing output file; a file
/// without one *is* the baseline and becomes the reference of this write.
fn load_reference(path: &std::path::Path) -> Value {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Value::Null;
    };
    let Ok(doc) = serde_json::from_str::<Value>(&text) else {
        return Value::Null;
    };
    match doc.get_field("reference") {
        Ok(Value::Null) | Err(_) => doc,
        Ok(reference) => reference.clone(),
    }
}

fn snapshot_to_value(snap: &sisg_obs::Snapshot) -> (Value, Value, Value) {
    let counters = Value::Object(
        snap.counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::U64(*v)))
            .collect(),
    );
    let gauges = Value::Object(
        snap.gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::F64(*v)))
            .collect(),
    );
    let opt = |v: Option<f64>| v.map_or(Value::Null, Value::F64);
    let histograms = Value::Object(
        snap.histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Value::Object(vec![
                        ("count".into(), Value::U64(h.count)),
                        ("sum".into(), Value::U64(h.sum)),
                        ("max".into(), Value::U64(h.max)),
                        ("p50".into(), opt(h.p50)),
                        ("p90".into(), opt(h.p90)),
                        ("p99".into(), opt(h.p99)),
                    ]),
                )
            })
            .collect(),
    );
    (counters, gauges, histograms)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_items, dim, query_threads) = if smoke {
        (400u32, 16usize, 2usize)
    } else {
        (
            env_usize("SISG_FRESH_ITEMS", 2_400) as u32,
            env_usize("SISG_FRESH_DIM", 32),
            env_usize("SISG_FRESH_THREADS", 2),
        )
    };
    let n_shards = env_usize("SISG_FRESH_SHARDS", 4);
    let seed = env_u64("SISG_SEED", 42);

    let corpus = GeneratedCorpus::generate(CorpusConfig::scaled(n_items, seed));
    let boundary = (corpus.sessions.len() as f64 * TODAY_FRACTION) as usize;
    let mut today = Corpus::new();
    let mut tomorrow = Corpus::new();
    for (i, s) in corpus.sessions.iter().enumerate() {
        if i < boundary {
            today.push(s.user, s.items);
        } else {
            tomorrow.push(s.user, s.items);
        }
    }
    // Next-item protocol on the tomorrow slice: the held-out targets are
    // invisible to BOTH conditions; only the prefixes stream in.
    let split = NextItemSplit::default().split(&tomorrow, SplitStage::Test);
    eprintln!(
        "corpus: {} items, {} today sessions, {} tomorrow sessions ({} eval cases)",
        n_items,
        today.len(),
        tomorrow.len(),
        split.eval.len()
    );

    let stream_config = StreamConfig {
        variant: Variant::SisgFU,
        sgns: SgnsConfig {
            dim,
            window: 2,
            negatives: 3,
            epochs: 1,
            threads: 1,
            seed,
            ..Default::default()
        },
        serving: ServingConfig {
            k: K,
            min_clicks_for_warm: 2,
        },
        batch_sessions: if smoke { 32 } else { 64 },
        publish_every: 4,
    };
    let mut pipeline =
        IngestPipeline::new(corpus.catalog.clone(), corpus.users.clone(), stream_config)
            .expect("valid stream config");

    let warm_watch = Stopwatch::start();
    pipeline.warm_start(&today).expect("warm start trains");
    let warm_seconds = warm_watch.elapsed_seconds();
    eprintln!("warm start: {} sessions in {warm_seconds:.2}s", today.len());

    let engine = ServeEngine::start(
        pipeline.freeze().expect("warm-start freeze"),
        ServeEngineConfig::builder()
            .n_shards(n_shards)
            .queue_capacity(256)
            .cache_capacity(1024)
            .cache_admit_after(1)
            .build()
            .expect("valid engine config"),
    )
    .expect("engine starts");

    // Frozen baseline: tomorrow's hit rate straight off today's snapshot.
    let frozen_snapshot = engine.snapshot();
    let frozen = evaluate_hit_rates("frozen", frozen_snapshot.model(), &split.eval, &[K]);
    drop(frozen_snapshot);
    let frozen_hr = frozen.at(K).unwrap_or(0.0);
    eprintln!("frozen HR@{K} on tomorrow slice: {frozen_hr:.4}");

    // Live ingest of tomorrow's prefixes under sustained query load.
    let log = EventLog::from_sessions(&split.train, seed, 500);
    let query_pool: Vec<ServeRequest> = (0..corpus.config.n_items)
        .map(|i| {
            let item = ItemId(i);
            ServeRequest::Candidates {
                item,
                si_values: *corpus.catalog.si_values(item),
                k: K,
            }
        })
        .collect();

    // ORDERING: Relaxed throughout the load section — stop/ok/overloaded/
    // failed are plain progress counters with no payload behind them; the
    // scoped-thread join orders the final reads, and the engine does its
    // own synchronization.
    let stop = AtomicBool::new(false);
    let ok = AtomicU64::new(0);
    let overloaded = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let mut outcome = None;
    let mut latencies: Vec<f64> = Vec::new();
    let ingest_watch = Stopwatch::start();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..query_threads {
            let query_pool = &query_pool;
            let engine = &engine;
            let (stop, ok, overloaded, failed) = (&stop, &ok, &overloaded, &failed);
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ ((t as u64 + 1) * 0x9E37));
                let mut lat = Vec::new();
                // ORDERING: Relaxed — see the load-section note above.
                while !stop.load(Ordering::Relaxed) {
                    let req = query_pool[rng.gen_range(0..query_pool.len())];
                    let watch = Stopwatch::start();
                    match engine.serve(req) {
                        Ok(resp) => {
                            std::hint::black_box(&resp);
                            lat.push(watch.elapsed_seconds() * 1e6);
                            // ORDERING: Relaxed — load-section note above.
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::Overloaded { .. }) => {
                            // ORDERING: Relaxed — load-section note above.
                            overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // ORDERING: Relaxed — load-section note above.
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                lat
            }));
        }
        let result = pipeline.run_live(&log, &engine);
        // ORDERING: Relaxed — see the load-section note above.
        stop.store(true, Ordering::Relaxed);
        outcome = Some(result);
        for h in handles {
            latencies.extend(h.join().expect("query thread joins"));
        }
    });
    let ingest_seconds = ingest_watch.elapsed_seconds();
    let outcome = outcome.expect("scope ran").expect("live ingest completes");

    // ORDERING: Relaxed — single-threaded again after the scope join.
    let (queries_ok, queries_overloaded, queries_failed) = (
        ok.load(Ordering::Relaxed),
        overloaded.load(Ordering::Relaxed),
        failed.load(Ordering::Relaxed),
    );
    assert_eq!(
        queries_failed, 0,
        "hard failures under concurrent ingest+query (Overloaded sheds \
         are counted separately and tolerated)"
    );
    let stats = engine.stats();
    assert!(
        outcome.publishes > 0 && stats.swaps >= outcome.publishes,
        "every publication must hot-swap: {outcome:?} vs {stats:?}"
    );

    // Fresh condition: the exact same eval cases against the last
    // published snapshot.
    let fresh_snapshot = engine.snapshot();
    let fresh = evaluate_hit_rates("fresh", fresh_snapshot.model(), &split.eval, &[K]);
    drop(fresh_snapshot);
    let fresh_hr = fresh.at(K).unwrap_or(0.0);
    let hr_gain_pct = if frozen_hr > 0.0 {
        (fresh_hr - frozen_hr) / frozen_hr * 100.0
    } else {
        0.0
    };

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let query_qps = queries_ok as f64 / ingest_seconds;
    let events_per_sec = outcome.events as f64 / ingest_seconds;

    let snap = sisg_obs::registry().snapshot("perf_fresh");
    let freshness = snap
        .histograms
        .iter()
        .find(|(k, _)| k == "stream.freshness.us")
        .map(|(_, h)| h.clone());
    let opt = |v: Option<f64>| v.map_or(Value::Null, Value::F64);

    println!(
        "ingest: {} events / {} batches / {} publishes in {ingest_seconds:.2}s \
         ({events_per_sec:.0} events/s), {} vocab admissions",
        outcome.events, outcome.batches, outcome.publishes, outcome.vocab_admitted
    );
    if let Some(h) = &freshness {
        println!(
            "freshness (event → servable, us): p50 {:?} p90 {:?} p99 {:?} max {}",
            h.p50, h.p90, h.p99, h.max
        );
    }
    println!(
        "query side: {queries_ok} ok ({query_qps:.0} qps), {queries_overloaded} shed, \
         client p50 {:.1}us p99 {:.1}us",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99)
    );
    println!(
        "swap accounting: {} swaps, {} cache clears, final epoch {}",
        stats.swaps, stats.cache_clears, outcome.final_epoch
    );
    println!(
        "HR@{K} on tomorrow slice: frozen {frozen_hr:.4} → fresh {fresh_hr:.4} \
         ({hr_gain_pct:+.1}%, {} cases)",
        split.eval.len()
    );

    let (counters, gauges, histograms) = snapshot_to_value(&snap);
    let out_path = results_dir().join("BENCH_fresh.json");
    let reference = load_reference(&out_path);
    let doc = Value::Object(vec![
        ("name".into(), Value::Str("perf_fresh".into())),
        (
            "workload".into(),
            Value::Object(vec![
                ("items".into(), Value::U64(u64::from(n_items))),
                ("dim".into(), Value::U64(dim as u64)),
                ("today_sessions".into(), Value::U64(today.len() as u64)),
                (
                    "tomorrow_sessions".into(),
                    Value::U64(tomorrow.len() as u64),
                ),
                ("eval_cases".into(), Value::U64(split.eval.len() as u64)),
                ("query_threads".into(), Value::U64(query_threads as u64)),
                ("shards".into(), Value::U64(n_shards as u64)),
                ("k".into(), Value::U64(K as u64)),
                ("smoke".into(), Value::Bool(smoke)),
            ]),
        ),
        (
            "ingest".into(),
            Value::Object(vec![
                ("warm_start_seconds".into(), Value::F64(warm_seconds)),
                ("seconds".into(), Value::F64(ingest_seconds)),
                ("events".into(), Value::U64(outcome.events)),
                ("batches".into(), Value::U64(outcome.batches)),
                ("publishes".into(), Value::U64(outcome.publishes)),
                ("vocab_admitted".into(), Value::U64(outcome.vocab_admitted)),
                ("events_per_sec".into(), Value::F64(events_per_sec)),
                ("swaps".into(), Value::U64(stats.swaps)),
                ("cache_clears".into(), Value::U64(stats.cache_clears)),
            ]),
        ),
        (
            "freshness_us".into(),
            Value::Object(vec![
                (
                    "count".into(),
                    Value::U64(freshness.as_ref().map_or(0, |h| h.count)),
                ),
                ("p50".into(), opt(freshness.as_ref().and_then(|h| h.p50))),
                ("p90".into(), opt(freshness.as_ref().and_then(|h| h.p90))),
                ("p99".into(), opt(freshness.as_ref().and_then(|h| h.p99))),
                (
                    "max".into(),
                    Value::U64(freshness.as_ref().map_or(0, |h| h.max)),
                ),
            ]),
        ),
        (
            "query_load".into(),
            Value::Object(vec![
                ("ok".into(), Value::U64(queries_ok)),
                ("overloaded".into(), Value::U64(queries_overloaded)),
                ("failed".into(), Value::U64(queries_failed)),
                ("qps".into(), Value::F64(query_qps)),
                (
                    "client_p50_us".into(),
                    Value::F64(percentile(&latencies, 0.50)),
                ),
                (
                    "client_p99_us".into(),
                    Value::F64(percentile(&latencies, 0.99)),
                ),
            ]),
        ),
        (
            "hitrate".into(),
            Value::Object(vec![
                ("k".into(), Value::U64(K as u64)),
                ("cases".into(), Value::U64(split.eval.len() as u64)),
                ("frozen_hr".into(), Value::F64(frozen_hr)),
                ("fresh_hr".into(), Value::F64(fresh_hr)),
                ("gain_pct".into(), Value::F64(hr_gain_pct)),
            ]),
        ),
        ("counters".into(), counters),
        ("gauges".into(), gauges),
        ("histograms".into(), histograms),
        ("reference".into(), reference),
    ]);
    let text = serde_json::to_string_pretty(&doc).expect("fresh doc serializes");
    std::fs::write(&out_path, text + "\n").expect("write BENCH_fresh.json");
    println!("wrote {}", out_path.display());
    let metrics = emit_metrics("perf_fresh");
    println!("metrics: {}", metrics.display());
}
