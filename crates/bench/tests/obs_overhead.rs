//! The observability overhead guard: recording primitives must cost less
//! than 2% of the work they instrument, so turning the metrics layer on
//! never shows up in experiment numbers.
//!
//! Two ratios are guarded, one per hot path:
//!
//! 1. **Training** — a counter add / gauge set against one `train_pair`
//!    step at the paper's production shape (d=128, 20 negatives). The
//!    trainers are even cheaper than this bound suggests: they accumulate
//!    in plain locals and touch the registry once per epoch per thread.
//! 2. **Serving / retrieval** — the full per-request recording bundle
//!    (stopwatch start + read, latency histogram record, two counter
//!    increments) against one ANN search over a small index, the retrieval
//!    op a production request pays for.
//!
//! With sisg-obs's `enabled` feature off, record bodies compile to nothing
//! and the ratios drop to ~0; the tests detect that configuration at
//! runtime (a probe counter stays at zero) and skip, since they assert on
//! recorded values.
//!
//! Timing robustness: each cost is the minimum of several measurement
//! rounds (noise only ever inflates a round), and the thresholds sit ~10x
//! above the observed ratios on an idle machine.

use sisg_ann::{AnnIndex, HnswConfig, HnswIndex};
use sisg_corpus::TokenId;
use sisg_embedding::Matrix;
use sisg_obs::{registry, Stopwatch};
use sisg_sgns::sgd::train_pair;
use sisg_sgns::sigmoid::SigmoidTable;
use std::hint::black_box;

/// True when sisg-obs was compiled with recording on (its default).
fn recording_enabled() -> bool {
    let probe = registry().counter("overhead.probe");
    probe.inc();
    probe.get() > 0
}

/// Minimum-of-rounds per-op cost in nanoseconds.
fn ns_per_op<F: FnMut()>(iters: u32, rounds: u32, mut op: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let watch = Stopwatch::start();
        for _ in 0..iters {
            op();
        }
        best = best.min(watch.elapsed_seconds() * 1e9 / f64::from(iters));
    }
    best
}

#[test]
fn counter_and_gauge_cost_under_2_percent_of_a_training_step() {
    if !recording_enabled() {
        eprintln!("sisg-obs recording compiled out; nothing to measure");
        return;
    }
    let dim = 128;
    let input = Matrix::uniform_init(1000, dim, 1);
    let output = Matrix::uniform_init(1000, dim, 2);
    let sigmoid = SigmoidTable::new();
    let negs: Vec<TokenId> = (2..22).map(TokenId).collect();
    let mut scratch = sisg_sgns::PairScratch::new(dim);
    let pair_ns = ns_per_op(2_000, 5, || {
        train_pair(
            &input,
            &output,
            TokenId(0),
            TokenId(1),
            black_box(&negs),
            0.025,
            &sigmoid,
            &mut scratch,
        );
    });

    let counter = registry().counter("overhead.counter");
    let counter_ns = ns_per_op(1_000_000, 5, || counter.add(black_box(1)));
    let gauge = registry().gauge("overhead.gauge");
    let gauge_ns = ns_per_op(1_000_000, 5, || gauge.set(black_box(0.5)));

    assert!(counter.get() > 0, "the measured adds must actually record");
    assert!(
        counter_ns < 0.02 * pair_ns,
        "counter add must be <2% of train_pair: {counter_ns:.1}ns vs {pair_ns:.1}ns"
    );
    assert!(
        gauge_ns < 0.02 * pair_ns,
        "gauge set must be <2% of train_pair: {gauge_ns:.1}ns vs {pair_ns:.1}ns"
    );
}

#[test]
fn request_recording_bundle_under_2_percent_of_an_ann_search() {
    if !recording_enabled() {
        eprintln!("sisg-obs recording compiled out; nothing to measure");
        return;
    }
    let vectors = Matrix::uniform_init(2_000, 32, 7);
    let index = HnswIndex::build(&vectors, HnswConfig::default());
    let query: Vec<f32> = vectors.row(0).to_vec();
    let search_ns = ns_per_op(200, 5, || {
        black_box(index.search(black_box(&query), 10));
    });

    // Everything `MatchingService::candidates` records per request.
    let requests = registry().counter("overhead.requests");
    let hits = registry().counter("overhead.hits");
    let latency = registry().histogram("overhead.latency_us");
    let bundle_ns = ns_per_op(200_000, 5, || {
        let watch = Stopwatch::start();
        requests.inc();
        hits.inc();
        latency.record_duration(watch.elapsed());
    });

    assert!(latency.count() > 0, "the measured bundle must record");
    assert!(
        bundle_ns < 0.02 * search_ns,
        "per-request recording must be <2% of one ANN search: \
         {bundle_ns:.1}ns vs {search_ns:.1}ns"
    );
}
