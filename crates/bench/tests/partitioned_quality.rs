//! HR@10 tolerance gate for the partitioned parallel engine (ISSUE 7 /
//! ROADMAP item 1): multi-thread partitioned training must retrieve
//! within tolerance of the exact single-threaded reference. This is the
//! quality half of the scaling acceptance — docs/PARALLELISM.md §6 has
//! the throughput half (`perf_train`).

use sisg_core::{SisgModel, Variant};
use sisg_corpus::split::{NextItemSplit, SplitStage};
use sisg_corpus::{CorpusConfig, GeneratedCorpus};
use sisg_eval::evaluate_hit_rates;
use sisg_sgns::{SgnsConfig, TrainEngine};

#[test]
fn partitioned_hr10_is_within_tolerance_of_single_thread() {
    let corpus = GeneratedCorpus::generate(CorpusConfig::scaled(600, 42));
    let split = NextItemSplit::default().split(&corpus.sessions, SplitStage::Test);
    let hr10 = |threads: usize| -> f64 {
        let cfg = SgnsConfig {
            dim: 24,
            window: 3,
            negatives: 5,
            epochs: 2,
            threads,
            // Pin the engine: this gate measures the partitioned path even
            // if the Auto density rule would route this corpus elsewhere.
            engine: TrainEngine::Partitioned,
            ..Default::default()
        };
        let (model, report) = SisgModel::train_on_sessions(
            &split.train,
            &corpus.catalog,
            &corpus.users,
            corpus.config.n_items,
            Variant::Sgns,
            &cfg,
        )
        .expect("train");
        assert!(report.stats.pairs > 0, "threads {threads} trained nothing");
        evaluate_hit_rates("sgns", &model, &split.eval, &[10])
            .at(10)
            .expect("HR@10 present")
    };
    let single = hr10(1);
    let partitioned = hr10(4);
    assert!(
        single > 0.0,
        "reference HR@10 must be non-trivial: {single}"
    );
    // Tolerance: the partitioned engine trades exactness for scaling
    // (local negatives, bounded replica staleness, cross-shard input
    // gradients delayed to the next merge) — it must stay within 20%
    // relative HR@10, the band the distributed ATNS experiments hold.
    assert!(
        partitioned >= single * 0.8,
        "partitioned HR@10 {partitioned} fell more than 20% below single-thread {single}"
    );
}
