//! The metric-catalog cross-check: every metric the instrumented code can
//! emit is (a) declared in `sisg_obs::names::ALL` and (b) documented in
//! `docs/OBSERVABILITY.md`, and every declared name is actually produced
//! by a real workload.
//!
//! One test drives each instrumented layer on a tiny corpus — SGNS and
//! EGES training, the shared-memory and message-passing distributed
//! runtimes, warm/cold/cold-user serving, HNSW search, and the recall
//! harness — then snapshots the process-wide registry and reconciles it
//! against the declared catalog and the documentation, in both directions.
//!
//! The declared-⊆-documented check always runs; the emission checks skip
//! when sisg-obs was built with recording compiled out.

use sisg_ann::{recall_at_k, AnnIndex, HnswConfig, HnswIndex};
use sisg_core::{MatchingService, ServingConfig, SisgModel, Variant};
use sisg_corpus::{CorpusConfig, EnrichOptions, EnrichedCorpus, GeneratedCorpus, ItemId};
use sisg_distributed::runtime::{train_distributed_on, PartitionStrategy};
use sisg_distributed::{train_distributed_channels, CrashSpec, DistConfig, FaultPlan};
use sisg_eges::{EgesConfig, EgesModel, WalkConfig};
use sisg_embedding::Matrix;
use sisg_obs::{names, registry};
use sisg_sgns::SgnsConfig;
use std::path::Path;

fn exercise_every_layer() -> GeneratedCorpus {
    let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
    let sgns = SgnsConfig {
        dim: 8,
        window: 2,
        negatives: 2,
        epochs: 1,
        ..Default::default()
    };

    // SGNS (inside SisgModel) + the serving layer, one all-warm and one
    // all-cold service so every request path records.
    let (model, _) = SisgModel::train(&corpus, Variant::SisgFU, &sgns);
    let clicks = vec![10u64; corpus.config.n_items as usize];
    let warm_svc = MatchingService::build(
        model,
        corpus.users.clone(),
        &clicks,
        ServingConfig {
            k: 10,
            min_clicks_for_warm: 1,
        },
    );
    let si = *corpus.catalog.si_values(ItemId(0));
    warm_svc.candidates(ItemId(0), &si, 5);
    warm_svc.cold_user_candidates(Some(0), None, None, 5);
    let (model, _) = SisgModel::train(&corpus, Variant::SisgFU, &sgns);
    let cold_svc = MatchingService::build(
        model,
        corpus.users.clone(),
        &vec![0u64; corpus.config.n_items as usize],
        ServingConfig {
            k: 10,
            min_clicks_for_warm: 1_000,
        },
    );
    cold_svc.candidates(ItemId(0), &si, 5);

    // EGES.
    EgesModel::train(
        &corpus,
        &EgesConfig {
            dim: 8,
            window: 2,
            negatives: 2,
            epochs: 1,
            walk: WalkConfig {
                walks_per_node: 1,
                walk_length: 5,
                seed: 1,
            },
            ..Default::default()
        },
    );

    // Both distributed runtimes; a tiny sync interval forces ATNS rounds
    // so the sync span records.
    let dist = DistConfig {
        workers: 2,
        dim: 8,
        window: 2,
        negatives: 2,
        epochs: 1,
        hot_set_size: 32,
        sync_interval: 4,
        strategy: PartitionStrategy::Hash,
        ..Default::default()
    };
    train_distributed_on(&corpus, EnrichOptions::FULL, &dist);
    let enriched = EnrichedCorpus::build(&corpus, EnrichOptions::FULL);
    train_distributed_channels(&enriched, &corpus.sessions, &corpus.catalog, &dist);

    // The fault layer: a simulated cluster under message loss plus one
    // crash, so the retry, dedup, fault-injection, and recovery counters
    // all record from a genuine fault path.
    let mut plan = FaultPlan::message_faults(7, 0.15, 0.05, 0.05);
    plan.crashes.push(CrashSpec {
        worker: 1,
        after_pairs: 16,
        down_ticks: 64,
    });
    let faulted = sisg_simtest::SimConfig::new(
        DistConfig {
            hot_set_size: 0,
            sync_interval: 1_000,
            ..dist
        },
        plan,
    );
    let out = sisg_simtest::simulate(&enriched, &corpus.sessions, &corpus.catalog, &faulted);
    assert!(out.completed, "faulted simulation did not drain");
    assert!(out.report.retries > 0 && out.report.recoveries == 1);

    // HNSW search and the recall harness.
    let vectors = Matrix::uniform_init(200, 8, 3);
    let index = HnswIndex::build(&vectors, HnswConfig::default());
    index.search(vectors.row(0), 5);
    recall_at_k(&index, &vectors, &[0, 7, 21], 5);

    corpus
}

#[test]
fn every_emitted_metric_is_declared_and_documented() {
    // Declared ⊆ documented: docs/OBSERVABILITY.md names every metric.
    let doc_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/OBSERVABILITY.md");
    let doc = std::fs::read_to_string(&doc_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", doc_path.display()));
    for name in names::ALL {
        assert!(
            doc.contains(name),
            "metric `{name}` is not documented in docs/OBSERVABILITY.md"
        );
    }

    exercise_every_layer();
    let snapshot = registry().snapshot("metrics_catalog");
    let emitted: Vec<&str> = snapshot.metric_names();
    if emitted.is_empty() {
        eprintln!("sisg-obs recording compiled out; skipping the emission checks");
        return;
    }

    // Emitted ⊆ declared: no instrumentation site invents a name outside
    // the catalog.
    for name in &emitted {
        assert!(
            names::ALL.contains(name),
            "metric `{name}` is emitted but not declared in sisg_obs::names::ALL"
        );
    }

    // Declared ⊆ emitted: every declared name is reachable by a real
    // workload — dead catalog entries rot documentation.
    for name in names::ALL {
        assert!(
            emitted.contains(name),
            "metric `{name}` is declared but none of the workloads emitted it"
        );
    }
}
