//! The metric-catalog cross-check: every metric the instrumented code can
//! emit is (a) declared in `sisg_obs::names::ALL` and (b) documented in
//! `docs/OBSERVABILITY.md`, and every declared name is actually produced
//! by a real workload.
//!
//! One test drives each instrumented layer on a tiny corpus — SGNS and
//! EGES training, the shared-memory and message-passing distributed
//! runtimes, warm/cold/cold-user serving, HNSW search, and the recall
//! harness — then snapshots the process-wide registry and reconciles it
//! against the declared catalog and the documentation, in both directions.
//!
//! The declared-⊆-documented check always runs; the emission checks skip
//! when sisg-obs was built with recording compiled out.

use sisg_ann::{recall_at_k, AnnIndex, HnswConfig, HnswIndex};
use sisg_core::{MatchingService, ServingConfig, SisgModel, Variant};
use sisg_corpus::{CorpusConfig, EnrichOptions, EnrichedCorpus, EventLog, GeneratedCorpus, ItemId};
use sisg_distributed::runtime::{train_distributed_on, PartitionStrategy};
use sisg_distributed::{train_distributed_channels, CrashSpec, DistConfig, FaultPlan};
use sisg_eges::{EgesConfig, EgesModel, WalkConfig};
use sisg_embedding::Matrix;
use sisg_obs::{names, registry};
use sisg_serve::{
    ColdPathMode, ServeEngine, ServeEngineConfig, ServeError, ServeRequest, TenantConfig, TenantId,
};
use sisg_sgns::{SgnsConfig, TrainEngine};
use sisg_stream::{IngestPipeline, StreamConfig};
use std::path::Path;

fn exercise_every_layer() -> GeneratedCorpus {
    let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
    let sgns = SgnsConfig {
        dim: 8,
        window: 2,
        negatives: 2,
        epochs: 1,
        ..Default::default()
    };

    // The partitioned parallel engine (threads > 1) with a hot set small
    // enough to leave real cold shards, so all three train.* routing and
    // replica-merge counters record from live paths.
    let (_, stats) = SisgModel::train(
        &corpus,
        Variant::Sgns,
        &sgns
            .clone()
            .with_threads(2)
            .with_hot_set_size(4)
            .with_engine(TrainEngine::Partitioned),
    )
    .expect("partitioned train");
    assert!(stats.stats.pairs > 0, "partitioned run trained nothing");

    // SGNS (inside SisgModel) + the serving layer, one all-warm and one
    // all-cold service so every request path records.
    let (model, _) = SisgModel::train(&corpus, Variant::SisgFU, &sgns).expect("train");
    let clicks = vec![10u64; corpus.config.n_items as usize];
    let warm_svc = MatchingService::build(
        model,
        corpus.users.clone(),
        &clicks,
        ServingConfig {
            k: 10,
            min_clicks_for_warm: 1,
        },
    )
    .expect("build");
    let si = *corpus.catalog.si_values(ItemId(0));
    warm_svc.candidates(ItemId(0), &si, 5).expect("warm serve");
    warm_svc
        .cold_user_candidates(Some(0), None, None, 5)
        .expect("cold-user serve");
    let (model, _) = SisgModel::train(&corpus, Variant::SisgFU, &sgns).expect("train");
    let cold_svc = MatchingService::build(
        model,
        corpus.users.clone(),
        &vec![0u64; corpus.config.n_items as usize],
        ServingConfig {
            k: 10,
            min_clicks_for_warm: 1_000,
        },
    )
    .expect("build");
    cold_svc.candidates(ItemId(0), &si, 5).expect("cold serve");

    // The sharded serve engine: a warm hit, a cold miss then cache hit, a
    // cold-user pair, a deterministic queue-full shed behind a held
    // shard, and a snapshot hot-swap — every serve.* name records.
    let (model, _) = SisgModel::train(&corpus, Variant::SisgFU, &sgns).expect("train");
    let mut mixed_clicks = vec![10u64; corpus.config.n_items as usize];
    mixed_clicks[1] = 0; // one cold item to drive the Eq. 6 cache path
    let serving = ServingConfig {
        k: 10,
        min_clicks_for_warm: 1,
    };
    let svc =
        MatchingService::build(model, corpus.users.clone(), &mixed_clicks, serving).expect("build");
    let engine = ServeEngine::start(
        svc,
        ServeEngineConfig::builder()
            .n_shards(1)
            .queue_capacity(1)
            .cache_capacity(16)
            .cache_admit_after(1)
            .build()
            .expect("valid engine config"),
    )
    .expect("engine starts");
    let warm_req = ServeRequest::Candidates {
        item: ItemId(0),
        si_values: si,
        k: 5,
    };
    let cold_req = ServeRequest::Candidates {
        item: ItemId(1),
        si_values: *corpus.catalog.si_values(ItemId(1)),
        k: 5,
    };
    engine.serve(warm_req).expect("warm engine serve");
    engine.serve(cold_req).expect("cold engine serve");
    let hit = engine.serve(cold_req).expect("cached engine serve");
    assert!(hit.cache_hit, "repeated cold key must hit the cache");
    let user_req = ServeRequest::ColdUser {
        gender: Some(0),
        age: None,
        purchase: None,
        k: 5,
    };
    engine.serve(user_req).expect("cold-user engine serve");
    let hold = engine.hold_shard(0).expect("hold accepted");
    let mut pending = Vec::new();
    let mut shed = false;
    for _ in 0..3 {
        match engine.submit(warm_req) {
            Ok(p) => pending.push(p),
            Err(ServeError::Overloaded { .. }) => shed = true,
            Err(other) => panic!("expected Overloaded, got {other}"),
        }
    }
    assert!(shed, "a held shard with a 1-deep queue must shed");
    drop(hold);
    for p in pending {
        p.wait().expect("queued request completes after release");
    }
    let (model, _) = SisgModel::train(&corpus, Variant::SisgFU, &sgns).expect("train");
    let next =
        MatchingService::build(model, corpus.users.clone(), &mixed_clicks, serving).expect("build");
    assert_eq!(engine.swap(next), 1);

    // A quantized-ANN engine so the serve.quant.* counters, the
    // bytes-per-item gauge, and the per-search hop histogram all record
    // from a live cold path.
    let (model, _) = SisgModel::train(&corpus, Variant::SisgFU, &sgns).expect("train");
    let quant_svc =
        MatchingService::build(model, corpus.users.clone(), &mixed_clicks, serving).expect("build");
    let quant_engine = ServeEngine::start(
        quant_svc,
        ServeEngineConfig::builder()
            .n_shards(1)
            .cache_capacity(0)
            .cold_path(ColdPathMode::QuantAnn { ef_search: 32 })
            .build()
            .expect("valid engine config"),
    )
    .expect("quantized engine starts");
    quant_engine
        .serve(cold_req)
        .expect("quantized cold-item serve");
    quant_engine
        .serve(user_req)
        .expect("quantized cold-user serve");

    // A tenant-labeled engine so every declared `serve.tenant.<label>.*`
    // suffix records: a warm hit, a cold miss then a cache hit, a
    // cold-user request, and a deterministic budget shed (the tenant's
    // single per-shard slot held by an uncollected submit).
    let (model, _) = SisgModel::train(&corpus, Variant::SisgFU, &sgns).expect("train");
    let tenant_svc =
        MatchingService::build(model, corpus.users.clone(), &mixed_clicks, serving).expect("build");
    let tenant = TenantId(1);
    let tenant_engine = ServeEngine::start(
        tenant_svc,
        ServeEngineConfig::builder()
            .n_shards(1)
            .queue_capacity(1)
            .cache_capacity(16)
            .cache_admit_after(1)
            .tenant(TenantConfig::new(tenant, "catalog_probe"))
            .build()
            .expect("valid engine config"),
    )
    .expect("tenant engine starts");
    tenant_engine
        .serve(warm_req.for_tenant(tenant))
        .expect("tenant warm serve");
    tenant_engine
        .serve(cold_req.for_tenant(tenant))
        .expect("tenant cold serve");
    let hit = tenant_engine
        .serve(cold_req.for_tenant(tenant))
        .expect("tenant cached serve");
    assert!(hit.cache_hit, "repeated tenant cold key must hit the cache");
    tenant_engine
        .serve(user_req.for_tenant(tenant))
        .expect("tenant cold-user serve");
    let held = tenant_engine
        .submit(warm_req.for_tenant(tenant))
        .expect("the tenant's one slot fits");
    match tenant_engine.submit(warm_req.for_tenant(tenant)) {
        Err(ServeError::SloBudgetExhausted { .. }) => {}
        Err(other) => panic!("expected a budget shed, got {other}"),
        Ok(_) => panic!("second submit must exhaust the tenant budget"),
    }
    held.wait().expect("held tenant request completes");

    // The streaming ingest pipeline end-to-end: a seeded click-stream
    // folded into incremental SGNS updates with repeated snapshot
    // publications, so every stream.* name (counters, the freshness
    // histogram, the train span) plus serve.cache_clears_total records
    // from a live run.
    let log = EventLog::from_sessions(&corpus.sessions, 3, 400);
    let mut pipeline = IngestPipeline::new(
        corpus.catalog.clone(),
        corpus.users.clone(),
        StreamConfig {
            variant: Variant::SisgFU,
            sgns: SgnsConfig {
                seed: 9,
                ..sgns.clone()
            },
            serving: ServingConfig {
                k: 10,
                min_clicks_for_warm: 2,
            },
            batch_sessions: 64,
            publish_every: 2,
        },
    )
    .expect("stream config is valid");
    let stream_engine = ServeEngine::start(
        pipeline.freeze().expect("cold freeze"),
        ServeEngineConfig::builder()
            .n_shards(2)
            .build()
            .expect("valid engine config"),
    )
    .expect("stream engine starts");
    let outcome = pipeline
        .run_replay(&log, &stream_engine)
        .expect("stream replay");
    assert!(outcome.publishes > 0, "the stream drive must publish");

    // EGES.
    EgesModel::train(
        &corpus,
        &EgesConfig {
            dim: 8,
            window: 2,
            negatives: 2,
            epochs: 1,
            walk: WalkConfig {
                walks_per_node: 1,
                walk_length: 5,
                seed: 1,
            },
            ..Default::default()
        },
    );

    // Both distributed runtimes; a tiny sync interval forces ATNS rounds
    // so the sync span records.
    let dist = DistConfig {
        workers: 2,
        dim: 8,
        window: 2,
        negatives: 2,
        epochs: 1,
        hot_set_size: 32,
        sync_interval: 4,
        strategy: PartitionStrategy::Hash,
        ..Default::default()
    };
    train_distributed_on(&corpus, EnrichOptions::FULL, &dist);
    let enriched = EnrichedCorpus::build(&corpus, EnrichOptions::FULL);
    train_distributed_channels(&enriched, &corpus.sessions, &corpus.catalog, &dist);

    // The fault layer: a simulated cluster under message loss plus one
    // crash, so the retry, dedup, fault-injection, and recovery counters
    // all record from a genuine fault path.
    let mut plan = FaultPlan::message_faults(7, 0.15, 0.05, 0.05);
    plan.crashes.push(CrashSpec {
        worker: 1,
        after_pairs: 16,
        down_ticks: 64,
    });
    let faulted = sisg_simtest::SimConfig::new(
        DistConfig {
            hot_set_size: 0,
            sync_interval: 1_000,
            ..dist
        },
        plan,
    );
    let out = sisg_simtest::simulate(&enriched, &corpus.sessions, &corpus.catalog, &faulted);
    assert!(out.completed, "faulted simulation did not drain");
    assert!(out.report.retries > 0 && out.report.recoveries == 1);

    // HNSW search and the recall harness.
    let vectors = Matrix::uniform_init(200, 8, 3);
    let index = HnswIndex::build(&vectors, HnswConfig::default());
    index.search(vectors.row(0), 5);
    recall_at_k(&index, &vectors, &[0, 7, 21], 5);

    corpus
}

#[test]
fn every_emitted_metric_is_declared_and_documented() {
    // Declared ⊆ documented: docs/OBSERVABILITY.md names every metric.
    let doc_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/OBSERVABILITY.md");
    let doc = std::fs::read_to_string(&doc_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", doc_path.display()));
    for name in names::ALL {
        assert!(
            doc.contains(name),
            "metric `{name}` is not documented in docs/OBSERVABILITY.md"
        );
    }
    // The per-tenant family is cataloged as templates, one documented row
    // per declared suffix with a literal `<label>` segment.
    for suffix in names::SERVE_TENANT_SUFFIXES {
        let row = format!("serve.tenant.<label>.{suffix}");
        assert!(
            doc.contains(&row),
            "tenant template `{row}` is not documented in docs/OBSERVABILITY.md"
        );
    }

    exercise_every_layer();
    let snapshot = registry().snapshot("metrics_catalog");
    let emitted: Vec<&str> = snapshot.metric_names();
    if emitted.is_empty() {
        eprintln!("sisg-obs recording compiled out; skipping the emission checks");
        return;
    }

    // Emitted ⊆ declared: no instrumentation site invents a name outside
    // the catalog. Tenant-labeled names are declared when they
    // instantiate a `serve.tenant.<label>.<suffix>` template.
    for name in &emitted {
        assert!(
            names::ALL.contains(name) || names::split_tenant_metric(name).is_some(),
            "metric `{name}` is emitted but not declared in sisg_obs::names::ALL"
        );
    }

    // Declared ⊆ emitted: every declared name is reachable by a real
    // workload — dead catalog entries rot documentation.
    for name in names::ALL {
        assert!(
            emitted.contains(name),
            "metric `{name}` is declared but none of the workloads emitted it"
        );
    }
    // Every declared tenant suffix too: the tenant engine above must
    // instantiate each template at least once.
    for suffix in names::SERVE_TENANT_SUFFIXES {
        assert!(
            emitted
                .iter()
                .any(|n| names::split_tenant_metric(n).is_some_and(|(_, s)| s == *suffix)),
            "tenant template suffix `{suffix}` was never instantiated by the workloads"
        );
    }
}
