//! Criterion benchmarks of the serving-index substrate: build cost and
//! per-query latency of IVF and HNSW vs the exact scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sisg_ann::{AnnIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex};
use sisg_corpus::TokenId;
use sisg_embedding::{retrieve_top_k, Matrix};
use std::time::Duration;

fn vectors(n: usize, dim: usize) -> Matrix {
    let mut rng = StdRng::seed_from_u64(11);
    Matrix::from_data(
        n,
        dim,
        (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
    )
}

fn bench_search(c: &mut Criterion) {
    let n = 20_000;
    let dim = 32;
    let m = vectors(n, dim);
    let query: Vec<f32> = m.row(123).to_vec();
    let ivf = IvfIndex::build(
        &m,
        IvfConfig {
            nlist: 141, // ~sqrt(n)
            nprobe: 8,
            ..Default::default()
        },
    );
    let hnsw = HnswIndex::build(&m, HnswConfig::default());

    let mut group = c.benchmark_group("ann_search_20k");
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("brute_force_top100", |b| {
        b.iter(|| retrieve_top_k(&query, &m, (0..n as u32).map(TokenId), 100, None))
    });
    group.bench_function("ivf_top100", |b| b.iter(|| ivf.search(&query, 100)));
    group.bench_function("hnsw_top100", |b| b.iter(|| hnsw.search(&query, 100)));
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("ann_build");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    for n in [2_000usize, 8_000] {
        let m = vectors(n, 32);
        group.bench_with_input(BenchmarkId::new("ivf", n), &n, |b, _| {
            b.iter(|| {
                IvfIndex::build(
                    &m,
                    IvfConfig {
                        nlist: (n as f64).sqrt() as usize,
                        ..Default::default()
                    },
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("hnsw", n), &n, |b, _| {
            b.iter(|| HnswIndex::build(&m, HnswConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search, bench_build);
criterion_main!(benches);
