//! Criterion micro-benchmarks of the hot kernels: the inner loops whose
//! cost dominates a 9.5-trillion-sample production run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sisg_corpus::TokenId;
use sisg_embedding::math::{axpy, cosine, dot};
use sisg_embedding::{kernels, retrieve_top_k, Matrix};
use sisg_sgns::sgd::{train_pair, PairScratch};
use sisg_sgns::sigmoid::SigmoidTable;
use sisg_sgns::{NoiseTable, PairSampler, WindowMode};
use std::time::Duration;

fn bench_vector_math(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_math");
    group.measurement_time(Duration::from_secs(2));
    for dim in [32usize, 128] {
        let x: Vec<f32> = (0..dim).map(|i| i as f32 * 0.01).collect();
        let mut y: Vec<f32> = (0..dim).map(|i| 1.0 - i as f32 * 0.01).collect();
        group.bench_with_input(BenchmarkId::new("dot", dim), &dim, |b, _| {
            b.iter(|| dot(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("axpy", dim), &dim, |b, _| {
            b.iter(|| axpy(black_box(0.01), black_box(&x), black_box(&mut y)))
        });
        group.bench_with_input(BenchmarkId::new("cosine", dim), &dim, |b, _| {
            b.iter(|| cosine(black_box(&x), black_box(&y)))
        });
    }
    group.finish();
}

/// The DESIGN.md §8 kernel variants against each other: the strict serial
/// dot (training order contract), the 4-accumulator unrolled dot (serving),
/// the 4-row interleaved ordered dot (batched training/scan), and the fused
/// gradient step against its two-pass equivalent.
fn bench_kernel_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_variants");
    group.measurement_time(Duration::from_secs(2));
    for dim in [32usize, 128] {
        let x: Vec<f32> = (0..dim).map(|i| i as f32 * 0.01).collect();
        let rows: Vec<Vec<f32>> = (0..4)
            .map(|r| (0..dim).map(|i| ((r * dim + i) as f32).sin()).collect())
            .collect();
        group.bench_with_input(BenchmarkId::new("dot_ordered", dim), &dim, |b, _| {
            b.iter(|| kernels::dot_ordered(black_box(&rows[0]), black_box(&x)))
        });
        group.bench_with_input(BenchmarkId::new("dot_unrolled", dim), &dim, |b, _| {
            b.iter(|| kernels::dot(black_box(&rows[0]), black_box(&x)))
        });
        group.bench_with_input(BenchmarkId::new("dot_ordered_x4", dim), &dim, |b, _| {
            b.iter(|| {
                kernels::dot_ordered_x4(
                    [
                        black_box(&rows[0][..]),
                        black_box(&rows[1][..]),
                        black_box(&rows[2][..]),
                        black_box(&rows[3][..]),
                    ],
                    black_box(&x),
                )
            })
        });
        let mut out = rows[1].clone();
        let mut grad = vec![0.0f32; dim];
        group.bench_with_input(BenchmarkId::new("fused_step", dim), &dim, |b, _| {
            b.iter(|| {
                kernels::fused_step(
                    black_box(0.01),
                    black_box(&x),
                    black_box(&mut out),
                    black_box(&mut grad),
                )
            })
        });
        let m = Matrix::uniform_init(1, dim, 11);
        let row = m.row_ptr(0);
        group.bench_with_input(BenchmarkId::new("fused_grad_step", dim), &dim, |b, _| {
            b.iter(|| {
                black_box(&row).fused_grad_step(
                    black_box(0.01),
                    black_box(&x),
                    black_box(&mut grad),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("two_pass_step", dim), &dim, |b, _| {
            b.iter(|| {
                black_box(&row).accumulate_scaled(black_box(0.01), black_box(&mut grad));
                black_box(&row).axpy_slice(black_box(0.01), black_box(&x));
            })
        });
    }
    group.finish();
}

/// The relaxed-atomic Hogwild accessors ([`Matrix::row_ptr`]) against the
/// plain-slice kernels on the same data: on mainstream ISAs a relaxed
/// `AtomicU32` load/store compiles to the same 32-bit mov as a plain one,
/// so these pairs of numbers should match within noise. This is the
/// regression guard for the soundness refactor that replaced aliased
/// `&mut` rows with `RowPtr`.
fn bench_row_ptr_vs_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_ptr");
    group.measurement_time(Duration::from_secs(2));
    for dim in [32usize, 128] {
        let m = Matrix::uniform_init(2, dim, 5);
        let a = m.row_ptr(0);
        let b_row = m.row_ptr(1);
        group.bench_with_input(BenchmarkId::new("atomic_dot", dim), &dim, |b, _| {
            b.iter(|| black_box(&a).dot(black_box(&b_row)))
        });
        group.bench_with_input(BenchmarkId::new("slice_dot", dim), &dim, |b, _| {
            b.iter(|| dot(black_box(m.row(0)), black_box(m.row(1))))
        });
        group.bench_with_input(BenchmarkId::new("atomic_axpy", dim), &dim, |b, _| {
            b.iter(|| black_box(&a).axpy_row(black_box(0.01), black_box(&b_row)))
        });
    }
    group.finish();
}

fn bench_noise_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise_table");
    group.measurement_time(Duration::from_secs(2));
    for vocab in [10_000usize, 1_000_000] {
        let freqs: Vec<u64> = (0..vocab).map(|i| (i as u64 % 1000) + 1).collect();
        let table = NoiseTable::from_freqs(&freqs, 0.75);
        let mut rng = StdRng::seed_from_u64(7);
        group.bench_with_input(BenchmarkId::new("sample", vocab), &vocab, |b, _| {
            b.iter(|| table.sample(black_box(&mut rng)))
        });
    }
    group.finish();
}

fn bench_sgd_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgd");
    group.measurement_time(Duration::from_secs(2));
    for (dim, negatives) in [(32usize, 5usize), (32, 20), (128, 20)] {
        let input = Matrix::uniform_init(1000, dim, 1);
        let output = Matrix::uniform_init(1000, dim, 2);
        let sigmoid = SigmoidTable::new();
        let negs: Vec<TokenId> = (2..2 + negatives as u32).map(TokenId).collect();
        let mut scratch = PairScratch::new(dim);
        group.bench_with_input(
            BenchmarkId::new("train_pair", format!("d{dim}_n{negatives}")),
            &dim,
            |b, _| {
                b.iter(|| {
                    train_pair(
                        &input,
                        &output,
                        TokenId(0),
                        TokenId(1),
                        black_box(&negs),
                        0.025,
                        &sigmoid,
                        &mut scratch,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_retrieval(c: &mut Criterion) {
    let mut group = c.benchmark_group("retrieval");
    group.measurement_time(Duration::from_secs(2));
    for n in [10_000usize, 100_000] {
        let m = Matrix::uniform_init(n, 32, 3);
        let query: Vec<f32> = (0..32).map(|i| (i as f32).sin()).collect();
        group.bench_with_input(BenchmarkId::new("top200", n), &n, |b, _| {
            b.iter(|| retrieve_top_k(black_box(&query), &m, (0..n as u32).map(TokenId), 200, None))
        });
    }
    group.finish();
}

fn bench_pair_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pair_sampling");
    group.measurement_time(Duration::from_secs(2));
    let seq: Vec<TokenId> = (0..200u32).map(TokenId).collect();
    let mut rng = StdRng::seed_from_u64(1);
    let mut out = Vec::with_capacity(4096);
    for (name, mode) in [
        ("symmetric", WindowMode::Symmetric),
        ("right_only", WindowMode::RightOnly),
    ] {
        let sampler = PairSampler {
            window: 10,
            mode,
            dynamic: false,
        };
        group.bench_function(BenchmarkId::new("window10_len200", name), |b| {
            b.iter(|| sampler.pairs_into(black_box(&seq), &mut rng, &mut out))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_vector_math,
    bench_kernel_variants,
    bench_row_ptr_vs_slice,
    bench_noise_sampling,
    bench_sgd_step,
    bench_retrieval,
    bench_pair_sampling
);
criterion_main!(benches);
