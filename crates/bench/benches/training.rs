//! Criterion end-to-end benchmarks: small full training runs per variant
//! and the ablation axes DESIGN.md calls out (window size, negatives).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sisg_core::{SisgModel, Variant};
use sisg_corpus::{CorpusConfig, GeneratedCorpus};
use sisg_sgns::SgnsConfig;
use std::time::Duration;

fn bench_corpus() -> GeneratedCorpus {
    let mut cfg = CorpusConfig::tiny();
    cfg.n_sessions = 600;
    GeneratedCorpus::generate(cfg)
}

fn small_config() -> SgnsConfig {
    SgnsConfig {
        dim: 16,
        window: 2,
        negatives: 5,
        epochs: 1,
        ..Default::default()
    }
}

fn bench_variants(c: &mut Criterion) {
    let corpus = bench_corpus();
    let cfg = small_config();
    let mut group = c.benchmark_group("train_variant");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    for variant in [Variant::Sgns, Variant::SisgF, Variant::SisgFUD] {
        group.bench_function(BenchmarkId::from_parameter(variant.name()), |b| {
            b.iter(|| SisgModel::train(&corpus, variant, &cfg).expect("train"))
        });
    }
    group.finish();
}

fn bench_hyperparams(c: &mut Criterion) {
    let corpus = bench_corpus();
    let mut group = c.benchmark_group("train_hyperparams");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    for negatives in [5usize, 20] {
        let cfg = SgnsConfig {
            negatives,
            ..small_config()
        };
        group.bench_function(BenchmarkId::new("negatives", negatives), |b| {
            b.iter(|| SisgModel::train(&corpus, Variant::Sgns, &cfg).expect("train"))
        });
    }
    for window in [2usize, 5] {
        let cfg = SgnsConfig {
            window,
            ..small_config()
        };
        group.bench_function(BenchmarkId::new("window", window), |b| {
            b.iter(|| SisgModel::train(&corpus, Variant::Sgns, &cfg).expect("train"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_hyperparams);
criterion_main!(benches);
