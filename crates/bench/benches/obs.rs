//! Criterion micro-benchmarks of the observability primitives, next to the
//! hot kernels they instrument.
//!
//! Prints the per-op cost of every `sisg-obs` recording primitive and, for
//! scale, the kernels those primitives wrap (`train_pair`, a warm serving
//! lookup's equivalent clone). The hard <2% guard lives in
//! `tests/obs_overhead.rs`; this bench is the human-readable companion.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sisg_corpus::TokenId;
use sisg_embedding::Matrix;
use sisg_obs::{registry, span, Stopwatch};
use sisg_sgns::sgd::train_pair;
use sisg_sgns::sigmoid::SigmoidTable;
use std::time::Duration;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");
    group.measurement_time(Duration::from_secs(1));

    let counter = registry().counter("bench.counter");
    group.bench_function("counter_add", |b| b.iter(|| counter.add(black_box(1))));

    let gauge = registry().gauge("bench.gauge");
    group.bench_function("gauge_set", |b| b.iter(|| gauge.set(black_box(0.5))));

    let histogram = registry().histogram("bench.histogram");
    group.bench_function("histogram_record", |b| {
        b.iter(|| histogram.record(black_box(12_345)))
    });

    group.bench_function("stopwatch_start_elapsed", |b| {
        b.iter(|| Stopwatch::start().elapsed())
    });

    group.bench_function("span_record", |b| b.iter(|| span("bench.span").finish()));

    group.finish();
}

/// The kernels the primitives amortize over, for eyeballing the ratio.
fn bench_reference_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_reference");
    group.measurement_time(Duration::from_secs(1));

    let dim = 128;
    let input = Matrix::uniform_init(1000, dim, 1);
    let output = Matrix::uniform_init(1000, dim, 2);
    let sigmoid = SigmoidTable::new();
    let negs: Vec<TokenId> = (2..22).map(TokenId).collect();
    let mut scratch = sisg_sgns::PairScratch::new(dim);
    group.bench_function("train_pair_d128_n20", |b| {
        b.iter(|| {
            train_pair(
                &input,
                &output,
                TokenId(0),
                TokenId(1),
                black_box(&negs),
                0.025,
                &sigmoid,
                &mut scratch,
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_primitives, bench_reference_kernels);
criterion_main!(benches);
