//! Recall@K of an ANN index against exact brute force — the metric by
//! which `nprobe` / `ef_search` are tuned before an index is allowed to
//! serve the matching stage.

use crate::AnnIndex;
use sisg_corpus::TokenId;
use sisg_embedding::{retrieve_top_k, Matrix};
use sisg_obs::{names, registry, Stopwatch};

/// Result of one recall evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct RecallReport {
    /// Evaluated cutoff.
    pub k: usize,
    /// Number of queries.
    pub queries: usize,
    /// Mean fraction of the exact top-K retrieved by the index.
    pub recall: f64,
    /// Mean index search latency (seconds/query).
    pub ann_seconds_per_query: f64,
    /// Mean brute-force latency (seconds/query).
    pub exact_seconds_per_query: f64,
}

impl RecallReport {
    /// Speedup of the index over the exact scan.
    pub fn speedup(&self) -> f64 {
        if self.ann_seconds_per_query > 0.0 {
            self.exact_seconds_per_query / self.ann_seconds_per_query
        } else {
            0.0
        }
    }
}

/// Evaluates `index` on the given query rows of `vectors` against an exact
/// scan of the same matrix.
pub fn recall_at_k(
    index: &dyn AnnIndex,
    vectors: &Matrix,
    query_rows: &[u32],
    k: usize,
) -> RecallReport {
    assert!(!query_rows.is_empty(), "need at least one query");
    let n = vectors.rows() as u32;
    let mut hits = 0usize;
    let mut total = 0usize;
    let mut ann_time = 0.0f64;
    let mut exact_time = 0.0f64;
    let probes = registry().counter(names::ANN_RECALL_PROBES_TOTAL);
    let true_hits = registry().counter(names::ANN_RECALL_HITS_TOTAL);
    for &q in query_rows {
        let query = vectors.row(q as usize);
        let t = Stopwatch::start();
        let approx = index.search(query, k);
        ann_time += t.elapsed_seconds();
        let t = Stopwatch::start();
        let exact = retrieve_top_k(query, vectors, (0..n).map(TokenId), k, None);
        exact_time += t.elapsed_seconds();
        // One ANN probe and one exact probe per query.
        probes.add(2);
        for e in exact {
            total += 1;
            if approx.iter().any(|h| h.id == e.token) {
                hits += 1;
            }
        }
    }
    true_hits.add(hits as u64);
    RecallReport {
        k,
        queries: query_rows.len(),
        recall: if total > 0 {
            hits as f64 / total as f64
        } else {
            0.0
        },
        ann_seconds_per_query: ann_time / query_rows.len() as f64,
        exact_seconds_per_query: exact_time / query_rows.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivf::{IvfConfig, IvfIndex};

    fn random_matrix(n: usize, dim: usize, seed: u64) -> Matrix {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_data(
            n,
            dim,
            (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        )
    }

    #[test]
    fn exact_index_has_perfect_recall() {
        /// Brute-force "index" as a control.
        struct Exact<'a>(&'a Matrix);
        impl AnnIndex for Exact<'_> {
            fn search(&self, query: &[f32], k: usize) -> Vec<crate::Hit> {
                retrieve_top_k(
                    query,
                    self.0,
                    (0..self.0.rows() as u32).map(TokenId),
                    k,
                    None,
                )
                .into_iter()
                .map(|n| crate::Hit {
                    id: n.token,
                    score: n.score,
                })
                .collect()
            }
            fn len(&self) -> usize {
                self.0.rows()
            }
        }
        let m = random_matrix(150, 6, 1);
        let report = recall_at_k(&Exact(&m), &m, &[0, 10, 20], 5);
        assert!((report.recall - 1.0).abs() < 1e-12);
        assert_eq!(report.queries, 3);
    }

    #[test]
    fn recall_improves_with_more_probes() {
        let m = random_matrix(600, 8, 2);
        let queries: Vec<u32> = (0..600).step_by(40).collect();
        let narrow = IvfIndex::build(
            &m,
            IvfConfig {
                nlist: 32,
                nprobe: 1,
                ..Default::default()
            },
        );
        let wide = IvfIndex::build(
            &m,
            IvfConfig {
                nlist: 32,
                nprobe: 16,
                ..Default::default()
            },
        );
        let r_narrow = recall_at_k(&narrow, &m, &queries, 10);
        let r_wide = recall_at_k(&wide, &m, &queries, 10);
        assert!(
            r_wide.recall > r_narrow.recall,
            "more probes must not hurt: {} vs {}",
            r_wide.recall,
            r_narrow.recall
        );
        assert!(r_wide.recall > 0.9, "16/32 probes should recall >0.9");
    }
}
