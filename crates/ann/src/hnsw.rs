//! HNSW — Hierarchical Navigable Small World graphs (Malkov & Yashunin),
//! scored by inner product as production vector engines do for embedding
//! retrieval.
//!
//! The structure is the standard one: each node is inserted at a
//! geometrically-sampled maximum layer; upper layers form progressively
//! coarser proximity graphs used for zoom-in routing, and layer 0 holds the
//! full graph with up to `2·m` links per node.
//!
//! **Maximum-inner-product handling.** Greedy graph search is only
//! navigable under a (near-)metric; raw inner product is not one — nodes
//! with large norms become universal hubs and recall collapses (we measured
//! ~0.5 on trained SISG output vectors, whose norms track popularity). The
//! index therefore applies the standard MIPS→cosine reduction internally:
//! each vector is augmented with one extra coordinate
//! `sqrt(M² − ‖x‖²)` (M = max norm), making all augmented norms equal `M`;
//! queries get a zero extra coordinate, so augmented inner products equal
//! the original ones exactly while the geometry becomes navigable.

use crate::{AnnIndex, Hit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sisg_corpus::TokenId;
use sisg_embedding::math::dot;
use sisg_embedding::Matrix;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// HNSW build/search parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HnswConfig {
    /// Max links per node on layers ≥ 1 (layer 0 allows `2·m`).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Beam width during search (≥ k for good recall).
    pub ef_search: usize,
    /// Seed for level sampling.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            seed: 42,
        }
    }
}

/// A max-heap entry ordered by score.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    score: f32,
    id: u32,
}
impl Eq for Scored {}
impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.id.cmp(&self.id))
    }
}
impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The built index (owns an augmented copy of the vectors).
#[derive(Debug)]
pub struct HnswIndex {
    config: HnswConfig,
    /// MIPS-augmented vectors (`dim + 1` columns, constant norm).
    vectors: Matrix,
    /// Original dimensionality (queries arrive un-augmented).
    dim: usize,
    /// `links[node][layer]` = neighbor ids.
    links: Vec<Vec<Vec<u32>>>,
    entry: Option<u32>,
    max_layer: usize,
}

impl HnswIndex {
    /// Builds the graph by inserting the rows of `vectors` in id order.
    pub fn build(vectors: &Matrix, config: HnswConfig) -> Self {
        assert!(config.m >= 2, "m must be at least 2");
        let dim = vectors.dim();
        // MIPS→cosine augmentation (see module docs).
        let max_norm2 = (0..vectors.rows())
            .map(|i| dot(vectors.row(i), vectors.row(i)))
            .fold(0.0f32, f32::max);
        let mut data = Vec::with_capacity(vectors.rows() * (dim + 1));
        for i in 0..vectors.rows() {
            let row = vectors.row(i);
            data.extend_from_slice(row);
            data.push((max_norm2 - dot(row, row)).max(0.0).sqrt());
        }
        let augmented = Matrix::from_data(vectors.rows(), dim + 1, data);
        let mut index = Self {
            config,
            vectors: augmented,
            dim,
            links: Vec::with_capacity(vectors.rows()),
            entry: None,
            max_layer: 0,
        };
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9A53);
        let ml = 1.0 / (config.m as f64).ln();
        for id in 0..vectors.rows() as u32 {
            let level = sample_level(&mut rng, ml);
            index.insert(id, level);
        }
        index
    }

    fn score(&self, a: u32, q: &[f32]) -> f32 {
        dot(q, self.vectors.row(a as usize))
    }

    /// Greedy beam search on one layer; returns up to `ef` best nodes,
    /// best first. `hops` counts score evaluations (node visits) so the
    /// serving path can report search effort; construction passes a dummy.
    fn search_layer(
        &self,
        query: &[f32],
        entry: u32,
        ef: usize,
        layer: usize,
        hops: &mut u64,
    ) -> Vec<Scored> {
        let mut visited = vec![false; self.links.len()];
        visited[entry as usize] = true;
        *hops += 1;
        let e = Scored {
            score: self.score(entry, query),
            id: entry,
        };
        // Candidates: max-heap by score. Results: min-heap (via Reverse) of
        // size ef.
        let mut candidates = BinaryHeap::from([e]);
        let mut results: BinaryHeap<std::cmp::Reverse<Scored>> =
            BinaryHeap::from([std::cmp::Reverse(e)]);
        while let Some(best) = candidates.pop() {
            // `results` starts with the entry node and `pop` only fires
            // above `ef`, so `peek` never sees it empty; fall back to -inf
            // rather than panic on the serving path.
            let worst = results.peek().map_or(f32::NEG_INFINITY, |r| r.0.score);
            if best.score < worst && results.len() >= ef {
                break;
            }
            for &nb in &self.links[best.id as usize][layer] {
                if visited[nb as usize] {
                    continue;
                }
                visited[nb as usize] = true;
                *hops += 1;
                let s = Scored {
                    score: self.score(nb, query),
                    id: nb,
                };
                let worst = results.peek().map_or(f32::NEG_INFINITY, |r| r.0.score);
                if results.len() < ef || s.score > worst {
                    candidates.push(s);
                    results.push(std::cmp::Reverse(s));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Scored> = results.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out
    }

    fn insert(&mut self, id: u32, level: usize) {
        debug_assert_eq!(id as usize, self.links.len());
        self.links.push(vec![Vec::new(); level + 1]);
        let Some(mut current) = self.entry else {
            self.entry = Some(id);
            self.max_layer = level;
            return;
        };
        let query: Vec<f32> = self.vectors.row(id as usize).to_vec();

        // Zoom down through layers above the node's level.
        let mut zoom_hops = 0u64;
        for layer in ((level + 1)..=self.max_layer).rev() {
            current = self.greedy_step(&query, current, layer, &mut zoom_hops);
        }

        // Insert into each layer from min(level, max_layer) down to 0.
        // Construction effort is not a serving metric; discard the hops.
        let mut build_hops = 0u64;
        for layer in (0..=level.min(self.max_layer)).rev() {
            let found = self.search_layer(
                &query,
                current,
                self.config.ef_construction,
                layer,
                &mut build_hops,
            );
            let max_links = if layer == 0 {
                self.config.m * 2
            } else {
                self.config.m
            };
            let chosen: Vec<u32> = found.iter().take(self.config.m).map(|s| s.id).collect();
            for &nb in &chosen {
                self.links[id as usize][layer].push(nb);
                self.links[nb as usize][layer].push(id);
                if self.links[nb as usize][layer].len() > max_links {
                    self.prune(nb, layer, max_links);
                }
            }
            if let Some(best) = found.first() {
                current = best.id;
            }
        }

        if level > self.max_layer {
            self.max_layer = level;
            self.entry = Some(id);
        }
    }

    /// Keeps only the `max_links` highest-scoring neighbors of `node`.
    fn prune(&mut self, node: u32, layer: usize, max_links: usize) {
        let anchor: Vec<f32> = self.vectors.row(node as usize).to_vec();
        let mut scored: Vec<Scored> = self.links[node as usize][layer]
            .iter()
            .map(|&nb| Scored {
                score: self.score(nb, &anchor),
                id: nb,
            })
            .collect();
        scored.sort_by(|a, b| b.cmp(a));
        scored.dedup_by_key(|s| s.id);
        self.links[node as usize][layer] =
            scored.into_iter().take(max_links).map(|s| s.id).collect();
    }

    /// One greedy hill-climb on `layer` from `from`. `hops` counts score
    /// evaluations, matching [`HnswIndex::search_layer`].
    fn greedy_step(&self, query: &[f32], from: u32, layer: usize, hops: &mut u64) -> u32 {
        let mut current = from;
        let mut best = self.score(current, query);
        *hops += 1;
        loop {
            let mut improved = false;
            for &nb in &self.links[current as usize]
                [layer.min(self.links[current as usize].len().saturating_sub(1))]
            {
                let s = self.score(nb, query);
                *hops += 1;
                if s > best {
                    best = s;
                    current = nb;
                    improved = true;
                }
            }
            if !improved {
                return current;
            }
        }
    }

    /// Graph diagnostics: mean out-degree on layer 0.
    pub fn mean_degree(&self) -> f64 {
        if self.links.is_empty() {
            return 0.0;
        }
        let total: usize = self.links.iter().map(|l| l[0].len()).sum();
        total as f64 / self.links.len() as f64
    }

    /// Number of layers in the hierarchy.
    pub fn layers(&self) -> usize {
        self.max_layer + 1
    }
}

fn sample_level(rng: &mut StdRng, ml: f64) -> usize {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    ((-u.ln() * ml).floor() as usize).min(24)
}

/// Cached obs handles so each search pays two relaxed-atomic records, not
/// a registry lookup.
struct HnswMetrics {
    search_us: &'static sisg_obs::Histogram,
    hops: &'static sisg_obs::Histogram,
}

fn hnsw_metrics() -> &'static HnswMetrics {
    static M: std::sync::OnceLock<HnswMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| HnswMetrics {
        search_us: sisg_obs::registry().histogram(sisg_obs::names::ANN_SEARCH_US),
        hops: sisg_obs::registry().histogram(sisg_obs::names::ANN_HNSW_HOPS),
    })
}

impl AnnIndex for HnswIndex {
    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        let m = hnsw_metrics();
        let watch = sisg_obs::Stopwatch::start();
        // Augment the query with a zero coordinate: augmented inner
        // products equal the original ones exactly.
        let mut query = query.to_vec();
        query.push(0.0);
        let query = &query[..];
        let Some(mut current) = self.entry else {
            return Vec::new();
        };
        let mut hops = 0u64;
        for layer in (1..=self.max_layer).rev() {
            current = self.greedy_step(query, current, layer, &mut hops);
        }
        let ef = self.config.ef_search.max(k);
        let out: Vec<Hit> = self
            .search_layer(query, current, ef, 0, &mut hops)
            .into_iter()
            .take(k)
            .map(|s| Hit {
                id: TokenId(s.id),
                score: s.score,
            })
            .collect();
        m.hops.record(hops);
        m.search_us.record_duration(watch.elapsed());
        out
    }

    fn len(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_matrix(n: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_data(
            n,
            dim,
            (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        )
    }

    #[test]
    fn finds_exact_top1_with_own_vector() {
        // Under inner-product scoring a point need not be its own nearest
        // neighbor (a higher-norm vector aligned with the query can beat
        // dot(q, q)), so the right property is agreement with the exact
        // argmax, not "finds itself".
        let m = random_matrix(400, 8, 1);
        let idx = HnswIndex::build(&m, HnswConfig::default());
        for probe in [0u32, 57, 399] {
            let query = m.row(probe as usize);
            let exact = (0..400).max_by(|&a, &b| {
                dot(query, m.row(a))
                    .partial_cmp(&dot(query, m.row(b)))
                    .unwrap_or(Ordering::Equal)
            });
            let hits = idx.search(query, 1);
            assert_eq!(
                hits[0].id.index(),
                exact.unwrap_or_default(),
                "probe {probe}: HNSW disagrees with brute force"
            );
        }
    }

    #[test]
    fn high_recall_vs_brute_force() {
        let m = random_matrix(500, 8, 2);
        let idx = HnswIndex::build(&m, HnswConfig::default());
        let mut recall_hits = 0usize;
        let mut total = 0usize;
        for q in (0..500).step_by(25) {
            let query = m.row(q);
            let approx: Vec<u32> = idx.search(query, 10).iter().map(|h| h.id.0).collect();
            let exact =
                sisg_embedding::retrieve_top_k(query, &m, (0..500u32).map(TokenId), 10, None);
            for e in exact {
                total += 1;
                if approx.contains(&e.token.0) {
                    recall_hits += 1;
                }
            }
        }
        let recall = recall_hits as f64 / total as f64;
        assert!(recall > 0.85, "recall@10 only {recall}");
    }

    #[test]
    fn empty_and_singleton_indexes() {
        let empty = HnswIndex::build(&Matrix::zeros(0, 4), HnswConfig::default());
        assert!(empty.is_empty());
        assert!(empty.search(&[0.0; 4], 5).is_empty());
        let single = HnswIndex::build(&random_matrix(1, 4, 3), HnswConfig::default());
        let hits = single.search(&[0.1, 0.2, 0.3, 0.4], 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, TokenId(0));
    }

    #[test]
    fn degrees_are_bounded() {
        let m = random_matrix(300, 8, 4);
        let cfg = HnswConfig {
            m: 8,
            ..Default::default()
        };
        let idx = HnswIndex::build(&m, cfg);
        for node in &idx.links {
            assert!(node[0].len() <= 16, "layer-0 degree exceeds 2m");
            for layer in &node[1..] {
                assert!(layer.len() <= 8 + 8, "upper-layer degree far over m");
            }
        }
        assert!(idx.mean_degree() > 2.0, "graph too sparse to navigate");
        assert!(idx.layers() >= 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = random_matrix(200, 4, 5);
        let a = HnswIndex::build(&m, HnswConfig::default());
        let b = HnswIndex::build(&m, HnswConfig::default());
        let qa: Vec<u32> = a.search(m.row(9), 5).iter().map(|h| h.id.0).collect();
        let qb: Vec<u32> = b.search(m.row(9), 5).iter().map(|h| h.id.0).collect();
        assert_eq!(qa, qb);
    }
}
