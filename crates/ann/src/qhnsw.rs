//! HNSW over int8 scale-per-row quantized vectors — the bounded-memory
//! sibling of [`crate::hnsw`], built for the in-shard cold-path indexes of
//! `crates/serve` (DESIGN.md §11).
//!
//! The graph structure, beam search, pruning and level sampling mirror
//! [`crate::hnsw::HnswIndex`] exactly; only the scorer changes: nodes are
//! scored with the quantized kernel `dot_q8` (i32 accumulation, one
//! rescale by `row_scale · query_scale`), and the query is quantized once
//! per search. Storage is generic over [`QuantRows`], so the index can
//! navigate an owned [`sisg_embedding::QuantMatrix`] or score straight
//! out of an encoded blob (`sisg_embedding::codec::QuantBlob`) without a
//! deserialization pass.
//!
//! **No MIPS augmentation.** The f32 index augments vectors to equalize
//! norms because raw inner product is not navigable. This index instead
//! *assumes* near-uniform row norms — its intended corpus is the
//! L2-normalized `item_norm` matrix the serving scorers already use,
//! where inner product coincides with cosine and the geometry is
//! navigable as-is. Augmenting after quantization would waste a
//! coordinate's worth of precision for rows that are already unit-norm.
//!
//! Quantized scores carry a bounded perturbation (≤ half a scale per
//! element), so callers that need exact order re-rank the returned
//! candidates with the f32 kernels; `crates/serve` does exactly that.

use crate::{AnnIndex, Hit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sisg_corpus::TokenId;
use sisg_embedding::kernels::dot_q8;
use sisg_embedding::{QuantQuery, QuantRows};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

pub use crate::hnsw::HnswConfig;

/// A max-heap entry ordered by score (same tie-break as the f32 index).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    score: f32,
    id: u32,
}
impl Eq for Scored {}
impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.id.cmp(&self.id))
    }
}
impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The built quantized index; owns its storage `S`.
#[derive(Debug)]
pub struct QHnswIndex<S> {
    config: HnswConfig,
    store: S,
    /// `links[node][layer]` = neighbor ids.
    links: Vec<Vec<Vec<u32>>>,
    entry: Option<u32>,
    max_layer: usize,
}

impl<S: QuantRows> QHnswIndex<S> {
    /// Builds the graph by inserting the rows of `store` in id order.
    pub fn build(store: S, config: HnswConfig) -> Self {
        assert!(config.m >= 2, "m must be at least 2");
        let rows = store.rows();
        let mut index = Self {
            config,
            store,
            links: Vec::with_capacity(rows),
            entry: None,
            max_layer: 0,
        };
        // Same level-sampling stream as the f32 index: identical seeds
        // give identical hierarchies over the same insertion order.
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9A53);
        let ml = 1.0 / (config.m as f64).ln();
        for id in 0..rows as u32 {
            let level = sample_level(&mut rng, ml);
            index.insert(id, level);
        }
        index
    }

    /// The underlying quantized storage.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Heap bytes held by the link graph (graph overhead beyond the
    /// quantized payload — reported separately in the serving memory
    /// accounting).
    pub fn link_bytes(&self) -> usize {
        self.links
            .iter()
            .map(|node| {
                std::mem::size_of::<Vec<u32>>()
                    + node
                        .iter()
                        .map(|l| std::mem::size_of::<Vec<u32>>() + l.len() * 4)
                        .sum::<usize>()
            })
            .sum()
    }

    /// Number of layers in the hierarchy.
    pub fn layers(&self) -> usize {
        self.max_layer + 1
    }

    #[inline]
    fn score(&self, a: u32, q: &[i8], q_scale: f32) -> f32 {
        let i = a as usize;
        dot_q8(self.store.row(i), q, self.store.scale(i) * q_scale)
    }

    /// Greedy beam search on one layer; returns up to `ef` best nodes,
    /// best first. `hops` counts score evaluations, as in the f32 index.
    fn search_layer(
        &self,
        q: &[i8],
        q_scale: f32,
        entry: u32,
        ef: usize,
        layer: usize,
        hops: &mut u64,
    ) -> Vec<Scored> {
        let mut visited = vec![false; self.links.len()];
        visited[entry as usize] = true;
        *hops += 1;
        let e = Scored {
            score: self.score(entry, q, q_scale),
            id: entry,
        };
        let mut candidates = BinaryHeap::from([e]);
        let mut results: BinaryHeap<std::cmp::Reverse<Scored>> =
            BinaryHeap::from([std::cmp::Reverse(e)]);
        while let Some(best) = candidates.pop() {
            // `results` starts non-empty and `pop` only fires above `ef`;
            // fall back to -inf rather than panic on the serving path.
            let worst = results.peek().map_or(f32::NEG_INFINITY, |r| r.0.score);
            if best.score < worst && results.len() >= ef {
                break;
            }
            for &nb in &self.links[best.id as usize][layer] {
                if visited[nb as usize] {
                    continue;
                }
                visited[nb as usize] = true;
                *hops += 1;
                let s = Scored {
                    score: self.score(nb, q, q_scale),
                    id: nb,
                };
                let worst = results.peek().map_or(f32::NEG_INFINITY, |r| r.0.score);
                if results.len() < ef || s.score > worst {
                    candidates.push(s);
                    results.push(std::cmp::Reverse(s));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Scored> = results.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out
    }

    fn insert(&mut self, id: u32, level: usize) {
        debug_assert_eq!(id as usize, self.links.len());
        self.links.push(vec![Vec::new(); level + 1]);
        let Some(mut current) = self.entry else {
            self.entry = Some(id);
            self.max_layer = level;
            return;
        };
        // The inserted node's own quantized row is the insertion query; its
        // scale folds into each per-row combined scale at score time.
        let q: Vec<i8> = self.store.row(id as usize).to_vec();
        let q_scale = self.store.scale(id as usize);

        let mut zoom_hops = 0u64;
        for layer in ((level + 1)..=self.max_layer).rev() {
            current = self.greedy_step(&q, q_scale, current, layer, &mut zoom_hops);
        }

        let mut build_hops = 0u64;
        for layer in (0..=level.min(self.max_layer)).rev() {
            let found = self.search_layer(
                &q,
                q_scale,
                current,
                self.config.ef_construction,
                layer,
                &mut build_hops,
            );
            let max_links = if layer == 0 {
                self.config.m * 2
            } else {
                self.config.m
            };
            let chosen: Vec<u32> = found.iter().take(self.config.m).map(|s| s.id).collect();
            for &nb in &chosen {
                self.links[id as usize][layer].push(nb);
                self.links[nb as usize][layer].push(id);
                if self.links[nb as usize][layer].len() > max_links {
                    self.prune(nb, layer, max_links);
                }
            }
            if let Some(best) = found.first() {
                current = best.id;
            }
        }

        if level > self.max_layer {
            self.max_layer = level;
            self.entry = Some(id);
        }
    }

    /// Keeps only the `max_links` highest-scoring neighbors of `node`.
    fn prune(&mut self, node: u32, layer: usize, max_links: usize) {
        let anchor: Vec<i8> = self.store.row(node as usize).to_vec();
        let anchor_scale = self.store.scale(node as usize);
        let mut scored: Vec<Scored> = self.links[node as usize][layer]
            .iter()
            .map(|&nb| Scored {
                score: self.score(nb, &anchor, anchor_scale),
                id: nb,
            })
            .collect();
        scored.sort_by(|a, b| b.cmp(a));
        scored.dedup_by_key(|s| s.id);
        self.links[node as usize][layer] =
            scored.into_iter().take(max_links).map(|s| s.id).collect();
    }

    /// One greedy hill-climb on `layer` from `from`.
    fn greedy_step(&self, q: &[i8], q_scale: f32, from: u32, layer: usize, hops: &mut u64) -> u32 {
        let mut current = from;
        let mut best = self.score(current, q, q_scale);
        *hops += 1;
        loop {
            let mut improved = false;
            for &nb in &self.links[current as usize]
                [layer.min(self.links[current as usize].len().saturating_sub(1))]
            {
                let s = self.score(nb, q, q_scale);
                *hops += 1;
                if s > best {
                    best = s;
                    current = nb;
                    improved = true;
                }
            }
            if !improved {
                return current;
            }
        }
    }

    /// Quantizes `query` once and runs the full zoom-down + layer-0 beam,
    /// returning up to `k` hits (quantized scores, best first) and the
    /// number of score evaluations — the serving path records the latter
    /// as `serve.ann_hops` and re-ranks the hits in f32.
    ///
    /// # Panics
    /// Panics when `query.len()` differs from the store's dimensionality.
    pub fn search_with_effort(&self, query: &[f32], k: usize) -> (Vec<Hit>, u64) {
        assert_eq!(
            query.len(),
            self.store.dim(),
            "query dimensionality mismatch"
        );
        let Some(mut current) = self.entry else {
            return (Vec::new(), 0);
        };
        let qq = QuantQuery::new(query);
        let (q, q_scale) = (qq.weights(), qq.scale());
        let mut hops = 0u64;
        for layer in (1..=self.max_layer).rev() {
            current = self.greedy_step(q, q_scale, current, layer, &mut hops);
        }
        let ef = self.config.ef_search.max(k);
        let hits = self
            .search_layer(q, q_scale, current, ef, 0, &mut hops)
            .into_iter()
            .take(k)
            .map(|s| Hit {
                id: TokenId(s.id),
                score: s.score,
            })
            .collect();
        (hits, hops)
    }
}

fn sample_level(rng: &mut StdRng, ml: f64) -> usize {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    ((-u.ln() * ml).floor() as usize).min(24)
}

/// Cached obs handles, as in the f32 index (same catalog names — the
/// quantized index is the same retrieval surface over different storage).
struct QMetrics {
    search_us: &'static sisg_obs::Histogram,
    hops: &'static sisg_obs::Histogram,
}

fn qhnsw_metrics() -> &'static QMetrics {
    static M: std::sync::OnceLock<QMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| QMetrics {
        search_us: sisg_obs::registry().histogram(sisg_obs::names::ANN_SEARCH_US),
        hops: sisg_obs::registry().histogram(sisg_obs::names::ANN_HNSW_HOPS),
    })
}

impl<S: QuantRows> AnnIndex for QHnswIndex<S> {
    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        let m = qhnsw_metrics();
        let watch = sisg_obs::Stopwatch::start();
        let (hits, hops) = self.search_with_effort(query, k);
        m.hops.record(hops);
        m.search_us.record_duration(watch.elapsed());
        hits
    }

    fn len(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisg_embedding::codec::{encode_quant, QuantBlob};
    use sisg_embedding::math::normalize;
    use sisg_embedding::{retrieve_top_k, Matrix, QuantMatrix};

    /// Seeded random matrix with L2-normalized rows — the corpus shape
    /// this index is built for (see module docs).
    fn normalized_matrix(n: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        for row in data.chunks_mut(dim) {
            normalize(row);
        }
        Matrix::from_data(n, dim, data)
    }

    #[test]
    fn recall_at_10_beats_the_gate_on_a_seeded_corpus() {
        // The ISSUE-level gate: quantized HNSW recall@10 vs f32
        // brute-force ≥ 0.95 on a seeded corpus of normalized vectors.
        let n = 1000usize;
        let m = normalized_matrix(n, 16, 11);
        let idx = QHnswIndex::build(QuantMatrix::from_matrix(&m), HnswConfig::default());
        let mut hits = 0usize;
        let mut total = 0usize;
        for qi in (0..n).step_by(17) {
            let query = m.row(qi);
            let approx: Vec<u32> = idx.search(query, 10).iter().map(|h| h.id.0).collect();
            let exact = retrieve_top_k(query, &m, (0..n as u32).map(TokenId), 10, None);
            for e in exact {
                total += 1;
                if approx.contains(&e.token.0) {
                    hits += 1;
                }
            }
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.95, "quantized recall@10 only {recall}");
    }

    #[test]
    fn owned_matrix_and_encoded_blob_score_identically() {
        // The zero-copy blob path is the same index: identical graph,
        // identical hits, bit-identical scores.
        let m = normalized_matrix(300, 8, 7);
        let qm = QuantMatrix::from_matrix(&m);
        let blob = QuantBlob::new(encode_quant(&qm)).expect("valid blob");
        let a = QHnswIndex::build(qm, HnswConfig::default());
        let b = QHnswIndex::build(blob, HnswConfig::default());
        for qi in [0usize, 13, 299] {
            let (ha, hops_a) = a.search_with_effort(m.row(qi), 5);
            let (hb, hops_b) = b.search_with_effort(m.row(qi), 5);
            assert_eq!(hops_a, hops_b);
            assert_eq!(ha.len(), hb.len());
            for (x, y) in ha.iter().zip(&hb) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    #[test]
    fn empty_and_singleton_indexes() {
        let empty = QHnswIndex::build(
            QuantMatrix::from_matrix(&Matrix::zeros(0, 4)),
            HnswConfig::default(),
        );
        assert!(empty.is_empty());
        assert!(empty.search(&[0.0; 4], 5).is_empty());
        let single = QHnswIndex::build(
            QuantMatrix::from_matrix(&normalized_matrix(1, 4, 3)),
            HnswConfig::default(),
        );
        let hits = single.search(&[0.1, 0.2, 0.3, 0.4], 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, TokenId(0));
    }

    #[test]
    fn degrees_are_bounded_and_effort_is_reported() {
        let m = normalized_matrix(300, 8, 4);
        let idx = QHnswIndex::build(
            QuantMatrix::from_matrix(&m),
            HnswConfig {
                m: 8,
                ..Default::default()
            },
        );
        for node in &idx.links {
            assert!(node[0].len() <= 16, "layer-0 degree exceeds 2m");
        }
        assert!(idx.link_bytes() > 0);
        let (hits, hops) = idx.search_with_effort(m.row(9), 5);
        assert_eq!(hits.len(), 5);
        assert!(hops >= 5, "beam search must score at least k nodes");
    }

    #[test]
    fn deterministic_given_seed() {
        let m = normalized_matrix(200, 4, 5);
        let a = QHnswIndex::build(QuantMatrix::from_matrix(&m), HnswConfig::default());
        let b = QHnswIndex::build(QuantMatrix::from_matrix(&m), HnswConfig::default());
        let qa: Vec<u32> = a.search(m.row(9), 5).iter().map(|h| h.id.0).collect();
        let qb: Vec<u32> = b.search(m.row(9), 5).iter().map(|h| h.id.0).collect();
        assert_eq!(qa, qb);
    }
}
