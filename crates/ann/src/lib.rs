//! Approximate nearest-neighbour retrieval for the matching stage.
//!
//! The paper's matching stage retrieves "a small number (thousands) of
//! items … out of roughly 1 billion" per click — at that scale similarity
//! search runs behind an ANN index, not a linear scan. This crate supplies
//! the substrate a production deployment of SISG would sit on:
//!
//! - [`kmeans`] — seeded Lloyd's k-means over embedding rows (also the
//!   coarse quantizer for IVF);
//! - [`ivf`] — an IVF-Flat index: cluster the vectors, probe the `nprobe`
//!   nearest cells at query time, scan those exactly;
//! - [`hnsw`] — a Hierarchical Navigable Small World graph index;
//! - [`qhnsw`] — the same graph over int8 scale-per-row quantized vectors,
//!   the bounded-memory variant behind the serve shards' cold paths;
//! - [`recall`] — recall@K against exact brute force, the metric by which
//!   index parameters are tuned.
//!
//! All indexes score by **inner product** (higher = better); cosine callers
//! pre-normalize rows, matching how [`sisg_core`]'s retrieval works.

#![warn(missing_docs)]

pub mod hnsw;
pub mod ivf;
pub mod kmeans;
pub mod qhnsw;
pub mod recall;

pub use hnsw::{HnswConfig, HnswIndex};
pub use ivf::{IvfConfig, IvfIndex};
pub use kmeans::{kmeans, KmeansConfig, KmeansResult};
pub use qhnsw::QHnswIndex;
pub use recall::{recall_at_k, RecallReport};

use sisg_corpus::TokenId;

/// A scored ANN hit (inner-product score, higher is better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Row id of the hit (a token/item id).
    pub id: TokenId,
    /// Inner-product score.
    pub score: f32,
}

/// Common interface of the retrieval indexes, mirroring the exact scan in
/// `sisg_embedding::retrieve_top_k`.
pub trait AnnIndex {
    /// The `k` (approximately) best rows for `query`, best first.
    fn search(&self, query: &[f32], k: usize) -> Vec<Hit>;

    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// True when the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
