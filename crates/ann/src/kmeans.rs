//! Seeded Lloyd's k-means over embedding rows.
//!
//! Used as the IVF coarse quantizer and available standalone (e.g. for the
//! user-type cluster analyses of Figure 5). Distances are Euclidean; for
//! cosine-style clustering, pre-normalize the rows.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sisg_embedding::Matrix;

/// K-means parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KmeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when the fraction of points changing assignment drops below
    /// this threshold.
    pub tolerance: f64,
    /// Seed for k-means++ initialization.
    pub seed: u64,
}

impl Default for KmeansConfig {
    fn default() -> Self {
        Self {
            k: 16,
            max_iters: 25,
            tolerance: 0.002,
            seed: 42,
        }
    }
}

/// The clustering output.
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// `k × dim` centroid matrix (row = centroid).
    pub centroids: Vec<f32>,
    /// Cluster assignment per input row.
    pub assignment: Vec<u32>,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Iterations actually run.
    pub iterations: usize,
}

impl KmeansResult {
    /// Centroid `c` as a slice.
    pub fn centroid(&self, c: usize) -> &[f32] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// Number of centroids.
    pub fn k(&self) -> usize {
        self.centroids.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Indices of the rows assigned to each cluster.
    pub fn clusters(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.k()];
        for (row, &c) in self.assignment.iter().enumerate() {
            out[c as usize].push(row as u32);
        }
        out
    }
}

/// Squared Euclidean distance between two vectors.
#[inline]
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

/// Runs k-means over the rows of `data`.
///
/// `k` is clamped to the number of rows. Initialization is k-means++
/// (distance-weighted seeding), which avoids the empty-cluster pathologies
/// of uniform seeding on Zipf-shaped data.
pub fn kmeans(data: &Matrix, config: &KmeansConfig) -> KmeansResult {
    let n = data.rows();
    let dim = data.dim();
    let k = config.k.clamp(1, n.max(1));
    if n == 0 {
        return KmeansResult {
            centroids: Vec::new(),
            assignment: Vec::new(),
            dim,
            iterations: 0,
        };
    }

    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x63A5);
    // k-means++ seeding.
    let mut centroids = vec![0.0f32; k * dim];
    let first = rng.gen_range(0..n);
    centroids[..dim].copy_from_slice(data.row(first));
    let mut best_d2: Vec<f32> = (0..n)
        .map(|i| squared_distance(data.row(i), &centroids[..dim]))
        .collect();
    for c in 1..k {
        let total: f64 = best_d2.iter().map(|&d| d as f64).sum();
        let chosen = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut u = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &d) in best_d2.iter().enumerate() {
                u -= d as f64;
                if u <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        let (dst, src) = (c * dim, data.row(chosen));
        centroids[dst..dst + dim].copy_from_slice(src);
        for (i, best) in best_d2.iter_mut().enumerate() {
            let d = squared_distance(data.row(i), &centroids[dst..dst + dim]);
            if d < *best {
                *best = d;
            }
        }
    }

    // Lloyd iterations.
    let mut assignment = vec![0u32; n];
    let mut iterations = 0;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        let mut changed = 0usize;
        for (i, slot) in assignment.iter_mut().enumerate() {
            let row = data.row(i);
            let mut best = 0u32;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let d = squared_distance(row, &centroids[c * dim..(c + 1) * dim]);
                if d < best_d {
                    best_d = d;
                    best = c as u32;
                }
            }
            if *slot != best {
                *slot = best;
                changed += 1;
            }
        }
        // Recompute centroids; re-seed empty clusters from the farthest
        // points so k stays effective.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0u64; k];
        for (i, &a) in assignment.iter().enumerate() {
            let c = a as usize;
            counts[c] += 1;
            for (s, &v) in sums[c * dim..(c + 1) * dim].iter_mut().zip(data.row(i)) {
                *s += v as f64;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                let fallback = rng.gen_range(0..n);
                centroids[c * dim..(c + 1) * dim].copy_from_slice(data.row(fallback));
            } else {
                for d in 0..dim {
                    centroids[c * dim + d] = (sums[c * dim + d] / counts[c] as f64) as f32;
                }
            }
        }
        if iter > 0 && (changed as f64 / n as f64) < config.tolerance {
            break;
        }
    }

    KmeansResult {
        centroids,
        assignment,
        dim,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight blobs around (±5, …).
    fn blob_matrix(n_per: usize, dim: usize) -> Matrix {
        let mut rng = StdRng::seed_from_u64(3);
        let mut data = Vec::with_capacity(2 * n_per * dim);
        for blob in 0..2 {
            let center = if blob == 0 { -5.0f32 } else { 5.0 };
            for _ in 0..n_per {
                for _ in 0..dim {
                    data.push(center + rng.gen_range(-0.3f32..0.3));
                }
            }
        }
        Matrix::from_data(2 * n_per, dim, data)
    }

    #[test]
    fn separates_two_blobs() {
        let m = blob_matrix(50, 4);
        let r = kmeans(
            &m,
            &KmeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        assert_eq!(r.k(), 2);
        // All of blob 0 in one cluster, all of blob 1 in the other.
        let first = r.assignment[0];
        assert!(r.assignment[..50].iter().all(|&a| a == first));
        assert!(r.assignment[50..].iter().all(|&a| a != first));
        // Centroids land near ±5.
        let c0 = r.centroid(first as usize);
        assert!(c0.iter().all(|&v| (v.abs() - 5.0).abs() < 0.5));
    }

    #[test]
    fn k_clamped_to_rows() {
        let m = blob_matrix(2, 3); // 4 rows
        let r = kmeans(
            &m,
            &KmeansConfig {
                k: 100,
                ..Default::default()
            },
        );
        assert_eq!(r.k(), 4);
    }

    #[test]
    fn empty_input() {
        let m = Matrix::zeros(0, 4);
        let r = kmeans(&m, &KmeansConfig::default());
        assert_eq!(r.k(), 0);
        assert!(r.assignment.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let m = blob_matrix(30, 4);
        let a = kmeans(&m, &KmeansConfig::default());
        let b = kmeans(&m, &KmeansConfig::default());
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn clusters_partition_rows() {
        let m = blob_matrix(25, 4);
        let r = kmeans(
            &m,
            &KmeansConfig {
                k: 5,
                ..Default::default()
            },
        );
        let total: usize = r.clusters().iter().map(Vec::len).sum();
        assert_eq!(total, 50);
    }
}
