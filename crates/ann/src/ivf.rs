//! IVF-Flat: inverted-file index with exact scoring inside probed cells.
//!
//! Build: k-means the corpus into `nlist` cells; each cell stores the ids
//! of its members. Search: rank cells by L2 distance to their centroids
//! (matching the L2 quantizer; identical to inner-product ranking for the
//! normalized vectors the matching stage serves), then scan the `nprobe`
//! best cells exactly. The recall/latency trade-off is `nprobe`.

use crate::kmeans::{kmeans, squared_distance, KmeansConfig};
use crate::{AnnIndex, Hit};
use sisg_corpus::TokenId;
use sisg_embedding::math::dot;
use sisg_embedding::{Matrix, TopK};

/// IVF build/search parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvfConfig {
    /// Number of cells (k-means clusters). A common heuristic is `√n`.
    pub nlist: usize,
    /// Cells probed per query.
    pub nprobe: usize,
    /// k-means iterations for the coarse quantizer.
    pub train_iters: usize,
    /// Seed for the quantizer.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self {
            nlist: 64,
            nprobe: 8,
            train_iters: 20,
            seed: 42,
        }
    }
}

/// The built index. Holds a copy of the vectors (as production IVF-Flat
/// does) so the source matrix can be dropped.
#[derive(Debug)]
pub struct IvfIndex {
    config: IvfConfig,
    dim: usize,
    /// Centroid matrix (`nlist × dim`).
    centroids: Matrix,
    /// Member ids per cell.
    cells: Vec<Vec<TokenId>>,
    /// Indexed vectors (`n × dim`), row-addressed by original id.
    vectors: Matrix,
}

impl IvfIndex {
    /// Builds the index over the rows of `vectors` (row i = id i).
    ///
    /// ```
    /// use sisg_ann::{AnnIndex, IvfConfig, IvfIndex};
    /// use sisg_embedding::Matrix;
    ///
    /// let vectors = Matrix::uniform_init(100, 8, 7);
    /// let index = IvfIndex::build(&vectors, IvfConfig { nlist: 10, nprobe: 10, ..Default::default() });
    /// let hits = index.search(vectors.row(3), 5);
    /// assert_eq!(hits.len(), 5);
    /// ```
    pub fn build(vectors: &Matrix, config: IvfConfig) -> Self {
        let n = vectors.rows();
        let nlist = config.nlist.clamp(1, n.max(1));
        let km = kmeans(
            vectors,
            &KmeansConfig {
                k: nlist,
                max_iters: config.train_iters,
                seed: config.seed,
                ..Default::default()
            },
        );
        let mut cells: Vec<Vec<TokenId>> = vec![Vec::new(); km.k().max(1)];
        for (row, &c) in km.assignment.iter().enumerate() {
            cells[c as usize].push(TokenId(row as u32));
        }
        let centroids = Matrix::from_data(km.k(), vectors.dim(), km.centroids.clone());
        Self {
            config,
            dim: vectors.dim(),
            centroids,
            cells,
            vectors: vectors.clone(),
        }
    }

    /// Number of cells.
    pub fn nlist(&self) -> usize {
        self.cells.len()
    }

    /// Mean cell occupancy (a balance diagnostic).
    pub fn mean_cell_size(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.len() as f64 / self.cells.len() as f64
    }

    /// Fraction of the corpus scanned for one query at the configured
    /// `nprobe` (the latency proxy).
    pub fn scan_fraction(&self) -> f64 {
        if self.len() == 0 {
            return 0.0;
        }
        let mut sizes: Vec<usize> = self.cells.iter().map(Vec::len).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let scanned: usize = sizes.iter().take(self.config.nprobe.min(sizes.len())).sum();
        scanned as f64 / self.len() as f64
    }

    /// Searches with an explicit probe count (overriding the config).
    pub fn search_with_probes(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        // Rank cells by (negative) L2 distance to the centroid — consistent
        // with the L2 quantizer that built the cells. For the normalized
        // embeddings the matching stage serves, this coincides with
        // inner-product ranking; for raw vectors it guarantees a query equal
        // to an indexed row probes that row's own cell first.
        let mut cell_top = TopK::new(nprobe.max(1));
        for c in 0..self.centroids.rows() {
            cell_top.push(
                TokenId(c as u32),
                -squared_distance(query, self.centroids.row(c)),
            );
        }
        let mut hits = TopK::new(k);
        for cell in cell_top.into_sorted() {
            for &id in &self.cells[cell.token.index()] {
                hits.push(id, dot(query, self.vectors.row(id.index())));
            }
        }
        hits.into_sorted()
            .into_iter()
            .map(|n| Hit {
                id: n.token,
                score: n.score,
            })
            .collect()
    }
}

impl AnnIndex for IvfIndex {
    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        self.search_with_probes(query, k, self.config.nprobe)
    }

    fn len(&self) -> usize {
        self.vectors.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_data(
            n,
            dim,
            (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
    }

    #[test]
    fn full_probe_equals_brute_force() {
        let m = random_matrix(300, 8, 1);
        let idx = IvfIndex::build(
            &m,
            IvfConfig {
                nlist: 16,
                ..Default::default()
            },
        );
        let query: Vec<f32> = m.row(7).to_vec();
        let approx = idx.search_with_probes(&query, 10, 16);
        let exact = sisg_embedding::retrieve_top_k(&query, &m, (0..300u32).map(TokenId), 10, None);
        let a: Vec<u32> = approx.iter().map(|h| h.id.0).collect();
        let e: Vec<u32> = exact.iter().map(|h| h.token.0).collect();
        assert_eq!(a, e, "probing every cell must be exact");
    }

    #[test]
    fn partial_probe_scans_own_cell() {
        let m = random_matrix(300, 8, 2);
        let idx = IvfIndex::build(&m, IvfConfig::default());
        // A row queried with its own vector probes its own cell first (L2
        // cell ranking guarantees it), so the row must appear in the
        // results — though not necessarily at rank 1 under inner-product
        // scoring, where larger-norm rows can outscore the query itself.
        let hits = idx.search_with_probes(m.row(42), 10, 1);
        assert!(
            hits.iter().any(|h| h.id == TokenId(42)),
            "own cell was not scanned"
        );
    }

    #[test]
    fn cells_partition_ids() {
        let m = random_matrix(200, 4, 3);
        let idx = IvfIndex::build(
            &m,
            IvfConfig {
                nlist: 10,
                ..Default::default()
            },
        );
        let total: usize = idx.cells.iter().map(Vec::len).sum();
        assert_eq!(total, 200);
        assert_eq!(idx.len(), 200);
        assert!(idx.mean_cell_size() > 0.0);
    }

    #[test]
    fn scan_fraction_grows_with_nprobe() {
        let m = random_matrix(400, 4, 4);
        let narrow = IvfIndex::build(
            &m,
            IvfConfig {
                nlist: 20,
                nprobe: 1,
                ..Default::default()
            },
        );
        let wide = IvfIndex::build(
            &m,
            IvfConfig {
                nlist: 20,
                nprobe: 10,
                ..Default::default()
            },
        );
        assert!(narrow.scan_fraction() < wide.scan_fraction());
        assert!(wide.scan_fraction() <= 1.0);
    }

    #[test]
    fn tiny_corpus_handled() {
        let m = random_matrix(3, 4, 5);
        let idx = IvfIndex::build(
            &m,
            IvfConfig {
                nlist: 64,
                ..Default::default()
            },
        );
        let hits = idx.search_with_probes(m.row(0), 5, 64);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].id, TokenId(0));
    }
}
