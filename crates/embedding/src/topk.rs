//! Bounded top-K collection and brute-force nearest-neighbour retrieval.
//!
//! The matching stage retrieves, for a query vector, the K most similar item
//! vectors. At paper scale this runs behind an ANN index; at our scale an
//! exact scan with a bounded min-heap is both faster to verify and exact,
//! which matters when comparing model variants by HR@K.

use crate::kernels;
use crate::matrix::Matrix;
use sisg_corpus::TokenId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A retrieval hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The retrieved token.
    pub token: TokenId,
    /// Its similarity score (higher is better).
    pub score: f32,
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on score so BinaryHeap (a max-heap) pops the *worst* hit;
        // ties break on token id for determinism.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.token.0.cmp(&other.token.0))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded collector keeping the `k` highest-scoring entries.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// Creates a collector for the best `k` entries.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers one candidate.
    #[inline]
    pub fn push(&mut self, token: TokenId, score: f32) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Neighbor { token, score });
        } else if let Some(worst) = self.heap.peek() {
            // Ties at the boundary resolve toward the smaller token id so the
            // result is independent of candidate order.
            if score > worst.score || (score == worst.score && token.0 < worst.token.0) {
                self.heap.pop();
                self.heap.push(Neighbor { token, score });
            }
        }
    }

    /// Current number of kept entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been kept.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The worst currently-kept score, if the collector is full.
    #[inline]
    pub fn threshold(&self) -> Option<f32> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|n| n.score)
        } else {
            None
        }
    }

    /// Finishes, returning hits in descending score order.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.token.0.cmp(&b.token.0))
        });
        v
    }
}

/// Scores every row of `matrix` in `candidates` against `query` by inner
/// product (cosine callers should pre-normalize) and returns the best `k`.
/// `exclude` is filtered out (typically the query item itself).
///
/// Candidates are scored four at a time through the interleaved ordered
/// dot kernel (DESIGN.md §8): each candidate's score is the plain serial
/// dot — position in the scan cannot change a score's bits — while the
/// four independent chains keep the FP units busy.
pub fn retrieve_top_k(
    query: &[f32],
    matrix: &Matrix,
    candidates: impl Iterator<Item = TokenId>,
    k: usize,
    exclude: Option<TokenId>,
) -> Vec<Neighbor> {
    let mut top = TopK::new(k);
    let mut batch = [TokenId(0); 4];
    let mut n = 0;
    for token in candidates {
        if exclude == Some(token) {
            continue;
        }
        batch[n] = token;
        n += 1;
        if n == 4 {
            let scores = kernels::dot_ordered_x4(
                [
                    matrix.row(batch[0].index()),
                    matrix.row(batch[1].index()),
                    matrix.row(batch[2].index()),
                    matrix.row(batch[3].index()),
                ],
                query,
            );
            for (t, s) in batch.iter().zip(scores) {
                top.push(*t, s);
            }
            n = 0;
        }
    }
    for &token in &batch[..n] {
        top.push(
            token,
            kernels::dot_ordered(matrix.row(token.index()), query),
        );
    }
    top.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut t = TopK::new(2);
        for (i, s) in [(0u32, 0.1f32), (1, 0.9), (2, 0.5), (3, 0.7)] {
            t.push(TokenId(i), s);
        }
        let hits = t.into_sorted();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].token, TokenId(1));
        assert_eq!(hits[1].token, TokenId(3));
    }

    #[test]
    fn zero_k_keeps_nothing() {
        let mut t = TopK::new(0);
        t.push(TokenId(0), 1.0);
        assert!(t.is_empty());
    }

    #[test]
    fn ties_break_deterministically() {
        let mut t = TopK::new(2);
        t.push(TokenId(5), 0.5);
        t.push(TokenId(1), 0.5);
        t.push(TokenId(3), 0.5);
        let hits = t.into_sorted();
        let ids: Vec<u32> = hits.iter().map(|n| n.token.0).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn retrieval_excludes_query() {
        let m = Matrix::from_data(3, 2, vec![1.0, 0.0, 0.9, 0.1, 0.0, 1.0]);
        let hits = retrieve_top_k(&[1.0, 0.0], &m, (0..3).map(TokenId), 2, Some(TokenId(0)));
        assert_eq!(hits[0].token, TokenId(1));
        assert!(hits.iter().all(|n| n.token != TokenId(0)));
    }

    #[test]
    fn threshold_only_when_full() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), None);
        t.push(TokenId(0), 0.3);
        assert_eq!(t.threshold(), None);
        t.push(TokenId(1), 0.8);
        assert_eq!(t.threshold(), Some(0.3));
    }
}
