//! The paired input/output embedding store of an SGNS model.

use crate::matrix::Matrix;
use sisg_corpus::TokenId;

/// Input (`v_i`) and output (`v'_i`) embeddings for every token.
///
/// Initialization follows word2vec: input rows uniform in
/// `[-0.5/dim, 0.5/dim)`, output rows zero. The asymmetric similarity of
/// Section II-C reads `input(target) · output(candidate)`, so both matrices
/// are retained after training instead of discarding the output matrix as
/// symmetric pipelines do.
#[derive(Debug, Clone)]
pub struct EmbeddingStore {
    input: Matrix,
    output: Matrix,
}

impl EmbeddingStore {
    /// Allocates and initializes matrices for `n_tokens` tokens of
    /// dimensionality `dim`.
    pub fn new(n_tokens: usize, dim: usize, seed: u64) -> Self {
        Self {
            input: Matrix::uniform_init(n_tokens, dim, seed ^ 0x1297),
            output: Matrix::zeros(n_tokens, dim),
        }
    }

    /// Builds a store from existing matrices.
    ///
    /// # Panics
    /// Panics when the matrices disagree in shape.
    pub fn from_matrices(input: Matrix, output: Matrix) -> Self {
        assert_eq!(input.rows(), output.rows(), "row count mismatch");
        assert_eq!(input.dim(), output.dim(), "dim mismatch");
        Self { input, output }
    }

    /// Number of tokens.
    #[inline]
    pub fn n_tokens(&self) -> usize {
        self.input.rows()
    }

    /// Embedding dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.input.dim()
    }

    /// Input vector of `token`.
    #[inline]
    pub fn input(&self, token: TokenId) -> &[f32] {
        self.input.row(token.index())
    }

    /// Output vector of `token`.
    #[inline]
    pub fn output(&self, token: TokenId) -> &[f32] {
        self.output.row(token.index())
    }

    /// The input matrix.
    #[inline]
    pub fn input_matrix(&self) -> &Matrix {
        &self.input
    }

    /// The output matrix.
    #[inline]
    pub fn output_matrix(&self) -> &Matrix {
        &self.output
    }

    /// Mutable input matrix (single-threaded updates).
    #[inline]
    pub fn input_matrix_mut(&mut self) -> &mut Matrix {
        &mut self.input
    }

    /// Mutable output matrix (single-threaded updates).
    #[inline]
    pub fn output_matrix_mut(&mut self) -> &mut Matrix {
        &mut self.output
    }

    /// Both matrices mutably at once — the entry point of the non-atomic
    /// exact training path (`threads == 1`), which needs simultaneous
    /// `&mut` access to input and output rows.
    #[inline]
    pub fn matrices_mut(&mut self) -> (&mut Matrix, &mut Matrix) {
        (&mut self.input, &mut self.output)
    }

    /// Splits into `(input, output)` matrices.
    pub fn into_matrices(self) -> (Matrix, Matrix) {
        (self.input, self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_shapes_and_values() {
        let s = EmbeddingStore::new(5, 4, 7);
        assert_eq!(s.n_tokens(), 5);
        assert_eq!(s.dim(), 4);
        assert!(s.output(TokenId(3)).iter().all(|&v| v == 0.0));
        assert!(s.input(TokenId(3)).iter().any(|&v| v != 0.0));
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn mismatched_matrices_rejected() {
        let _ = EmbeddingStore::from_matrices(Matrix::zeros(2, 3), Matrix::zeros(3, 3));
    }

    #[test]
    fn deterministic_init() {
        let a = EmbeddingStore::new(4, 4, 5);
        let b = EmbeddingStore::new(4, 4, 5);
        assert_eq!(a.input(TokenId(2)), b.input(TokenId(2)));
    }
}
