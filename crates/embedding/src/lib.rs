//! Dense embedding storage and retrieval.
//!
//! SGNS maintains two matrices: *input* vectors `v_i` (used when a token is
//! the target) and *output* vectors `v'_i` (used when it is the context).
//! SISG's asymmetric similarity (Section II-C) ranks "what follows item v"
//! by `input(v) · output(c)` rather than the usual input·input cosine, so
//! both matrices are first-class here and survive serialization.

#![warn(missing_docs)]

pub mod codec;
pub mod kernels;
pub mod math;
pub mod matrix;
pub mod quant;
pub mod replica;
pub mod store;
pub mod topk;
pub mod word2vec;

pub use matrix::{dot_slice_x4, Matrix, RowPtr};
pub use quant::{dequantize_row, quantize_row, QuantMatrix, QuantQuery, QuantRows};
pub use replica::ReplicaBank;
pub use store::EmbeddingStore;
pub use topk::{retrieve_top_k, Neighbor, TopK};
