//! Per-worker replica banks over [`Matrix`] rows — the storage half of the
//! intra-process ATNS trick (docs/PARALLELISM.md).
//!
//! The ownership-partitioned trainer gives every thread its own full copy
//! of the hot top-K rows so the contended head of the frequency
//! distribution is written without any sharing at all; between training
//! rounds the replicas are reconciled — the distributed hot set of
//! Section III-A, but across threads instead of machines. Two merges are
//! offered: [`ReplicaBank::merge_mean`] (plain ATNS averaging) and
//! [`ReplicaBank::merge_deltas`] (trust-region-clipped delta sum, the
//! trainer's default — averaging shrinks the round's aggregate gradient
//! by the replica count, so the sum is what preserves quality, and the
//! per-row movement clip is what keeps correlated overshoot from
//! compounding into divergence; see docs/PARALLELISM.md §4).
//!
//! The merge arithmetic runs through the order-preserving kernels
//! ([`kernels::add_assign`] / [`kernels::scale`]), so a merge is
//! deterministic: replicas are accumulated in index order and the result
//! is bit-identical to the sequential scalar reference (pinned by a test
//! below). Per-element accessors are lint-banned here (`xtask lint`
//! rule 6): this file is part of the training hot path's support code and
//! must stay on the slice kernels.

use crate::kernels;
use crate::matrix::Matrix;

/// `n` same-shaped replicas of a bank of rows, one per training thread.
///
/// The bank owns its replicas; [`ReplicaBank::replicas_mut`] splits them
/// into disjoint `&mut Matrix` borrows so each scoped thread trains its own
/// copy through the non-atomic kernel path, and the single-threaded merge
/// phase reconciles them afterwards.
#[derive(Debug)]
pub struct ReplicaBank {
    replicas: Vec<Matrix>,
    /// The value every replica started the current round from (the result
    /// of the previous merge) — the reference point for delta merging.
    base: Matrix,
    rows: usize,
    dim: usize,
}

impl ReplicaBank {
    /// Builds `n_replicas` copies of the given `source` rows: replica `r`'s
    /// row `i` starts as `source.row(rows[i])`.
    ///
    /// # Panics
    /// Panics when `n_replicas == 0` or any row index is out of bounds.
    pub fn gather(n_replicas: usize, source: &Matrix, rows: &[usize]) -> Self {
        assert!(n_replicas > 0, "a replica bank needs at least one replica");
        let dim = source.dim();
        let mut proto = Matrix::zeros(rows.len(), dim);
        for (slot, &r) in rows.iter().enumerate() {
            proto.row_mut(slot).copy_from_slice(source.row(r));
        }
        let replicas = (0..n_replicas).map(|_| proto.clone()).collect();
        Self {
            replicas,
            base: proto,
            rows: rows.len(),
            dim,
        }
    }

    /// Number of replicas.
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Rows per replica.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Dimensionality of every row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Replica `r`, read-only.
    pub fn replica(&self, r: usize) -> &Matrix {
        &self.replicas[r]
    }

    /// Disjoint mutable borrows of every replica, in index order — hand one
    /// to each training thread.
    pub fn replicas_mut(&mut self) -> Vec<&mut Matrix> {
        self.replicas.iter_mut().collect()
    }

    /// Averages every row across the replicas and writes the mean back into
    /// each of them, leaving all replicas identical. Returns the number of
    /// rows merged.
    ///
    /// `scratch` must have length [`ReplicaBank::dim`]. Accumulation order
    /// is replica `0, 1, …, n−1` through the ordered kernels, so the result
    /// is deterministic and matches the sequential scalar mean bit for bit.
    pub fn merge_mean(&mut self, scratch: &mut [f32]) -> u64 {
        assert_eq!(scratch.len(), self.dim, "scratch/dim mismatch");
        let inv = 1.0f32 / self.replicas.len() as f32;
        for slot in 0..self.rows {
            scratch.copy_from_slice(self.replicas[0].row(slot));
            for r in 1..self.replicas.len() {
                kernels::add_assign(scratch, self.replicas[r].row(slot));
            }
            kernels::scale(scratch, inv);
            self.base.row_mut(slot).copy_from_slice(scratch);
            for replica in &mut self.replicas {
                replica.row_mut(slot).copy_from_slice(scratch);
            }
        }
        self.rows as u64
    }

    /// Per-element RMS bound on one row's movement in a single
    /// [`ReplicaBank::merge_deltas`] call — the trust region of the
    /// delta-sum merge. Summed deltas from disjoint pair slices are the
    /// correct full-gradient estimate and pass through untouched (typical
    /// per-round movements sit orders of magnitude below this bound); only
    /// runaway rounds — hot-dominated corpora where correlated summed
    /// steps compound into norm explosion — get clipped back onto the
    /// bound, which breaks the exponential feedback loop
    /// (docs/PARALLELISM.md §4).
    pub const DELTA_CLIP_RMS: f32 = 0.5;

    /// Delta-sum reconciliation with a trust-region clip: every row
    /// becomes `base + λ · Σᵣ (replicaᵣ − base)` where `λ = 1` whenever
    /// the summed movement's per-element RMS is within
    /// [`ReplicaBank::DELTA_CLIP_RMS`], else `λ` scales it back onto that
    /// bound. Written back to all replicas and to the base; returns the
    /// number of rows merged.
    ///
    /// This is the merge the partitioned trainer uses. Plain averaging
    /// divides the round's aggregate gradient by the replica count —
    /// measured as a large retrieval-quality loss (docs/PARALLELISM.md §4)
    /// — while the delta sum preserves full gradient mass, exactly like
    /// Hogwild's additive writes but applied at a deterministic barrier.
    /// The clip exists because the sum has a failure mode the average
    /// doesn't: on hot-dominated corpora every replica pushes a hot row
    /// the same way and the summed step overshoots, compounding into
    /// divergence; bounding one merge's movement breaks the compounding
    /// while leaving in-regime rounds bit-exact (`λ = 1` applies no
    /// scaling at all). Accumulation order is replica `0, 1, …, n−1`
    /// through [`kernels::accumulate_delta`] with an ordered norm, so the
    /// result is bit-deterministic.
    ///
    /// `scratch` must have length [`ReplicaBank::dim`].
    pub fn merge_deltas(&mut self, scratch: &mut [f32]) -> u64 {
        assert_eq!(scratch.len(), self.dim, "scratch/dim mismatch");
        let trust = Self::DELTA_CLIP_RMS * Self::DELTA_CLIP_RMS * self.dim as f32;
        for slot in 0..self.rows {
            let base = self.base.row(slot);
            scratch.fill(0.0);
            for replica in &self.replicas {
                kernels::accumulate_delta(scratch, replica.row(slot), base);
            }
            let sum_sq = kernels::dot_ordered(scratch, scratch);
            if sum_sq > trust {
                kernels::scale(scratch, (trust / sum_sq).sqrt());
            }
            kernels::add_assign(scratch, base);
            self.base.row_mut(slot).copy_from_slice(scratch);
            for replica in &mut self.replicas {
                replica.row_mut(slot).copy_from_slice(scratch);
            }
        }
        self.rows as u64
    }

    /// Copies the merged row `slot` of replica 0 into `dst.row(dst_row)` —
    /// the canonical-store write-back after a merge (all replicas are
    /// identical then, so replica 0 is the merged value).
    pub fn publish_row(&self, slot: usize, dst: &mut Matrix, dst_row: usize) {
        dst.row_mut(dst_row)
            .copy_from_slice(self.replicas[0].row(slot));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> ReplicaBank {
        let source = Matrix::uniform_init(6, 8, 42);
        ReplicaBank::gather(3, &source, &[4, 0, 2])
    }

    #[test]
    fn gather_copies_the_requested_rows_into_every_replica() {
        let source = Matrix::uniform_init(6, 8, 42);
        let b = ReplicaBank::gather(3, &source, &[4, 0, 2]);
        assert_eq!(b.n_replicas(), 3);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.dim(), 8);
        for r in 0..3 {
            assert_eq!(b.replica(r).row(0), source.row(4));
            assert_eq!(b.replica(r).row(1), source.row(0));
            assert_eq!(b.replica(r).row(2), source.row(2));
        }
    }

    #[test]
    fn merge_mean_matches_the_scalar_reference_bit_for_bit() {
        let mut b = bank();
        // Drift the replicas apart deterministically.
        for (r, m) in b.replicas_mut().into_iter().enumerate() {
            for slot in 0..3 {
                for x in m.row_mut(slot) {
                    *x += (r as f32 + 1.0) * 0.125;
                }
            }
        }
        // Scalar reference mean, same accumulation order.
        let mut expect = [[0.0f32; 8]; 3];
        for (slot, row) in expect.iter_mut().enumerate() {
            let mut acc = b.replica(0).row(slot).to_vec();
            for r in 1..3 {
                for (a, v) in acc.iter_mut().zip(b.replica(r).row(slot)) {
                    *a += v;
                }
            }
            for (e, a) in row.iter_mut().zip(&acc) {
                *e = a * (1.0 / 3.0);
            }
        }
        let merged = b.merge_mean(&mut [0.0; 8]);
        assert_eq!(merged, 3);
        for (slot, row) in expect.iter().enumerate() {
            for r in 0..3 {
                let got: Vec<u32> = b.replica(r).row(slot).iter().map(|v| v.to_bits()).collect();
                let want: Vec<u32> = row.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "slot {slot} replica {r}");
            }
        }
    }

    #[test]
    fn merge_of_identical_replicas_is_a_fixed_point() {
        // With two replicas the mean is (x + x) · 0.5 — both operations are
        // exact in f32, so a merge with no drift must not perturb any bit.
        let source = Matrix::uniform_init(6, 8, 42);
        let mut b = ReplicaBank::gather(2, &source, &[4, 0, 2]);
        let before: Vec<u32> = b
            .replica(1)
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        b.merge_mean(&mut [0.0; 8]);
        let after: Vec<u32> = b
            .replica(1)
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn merge_deltas_preserves_disjoint_gradient_mass() {
        let mut b = bank();
        let base: Vec<Vec<f32>> = (0..3).map(|slot| b.replica(0).row(slot).to_vec()).collect();
        // Each replica moves a *different* coordinate — disjoint
        // information; the total movement is far inside the trust region.
        for (r, m) in b.replicas_mut().into_iter().enumerate() {
            for slot in 0..3 {
                m.row_mut(slot)[2 * r] += 0.5;
            }
        }
        b.merge_deltas(&mut [0.0; 8]);
        // The merged row carries every replica's full delta — the SUM
        // (coordinates 0, 2, 4 each moved by 0.5), not the mean (0.5/3).
        for (slot, base_row) in base.iter().enumerate() {
            for r in 0..3 {
                for (d, (got, want)) in b.replica(r).row(slot).iter().zip(base_row).enumerate() {
                    let expect = if d % 2 == 0 && d < 6 {
                        want + 0.5
                    } else {
                        *want
                    };
                    assert!(
                        (got - expect).abs() < 1e-5,
                        "slot {slot} replica {r} dim {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_deltas_sums_moderate_parallel_deltas_in_full() {
        // Every replica applies the IDENTICAL small delta. Parallel deltas
        // from disjoint pair slices are the normal case for hot rows —
        // each thread saw the same distribution — and the sum is the
        // correct full-gradient estimate, so within the trust region the
        // merge must NOT shrink it (movement 3 · 0.05, not 0.05).
        let mut b = bank();
        let base: Vec<Vec<f32>> = (0..3).map(|slot| b.replica(0).row(slot).to_vec()).collect();
        for m in b.replicas_mut() {
            for slot in 0..3 {
                for x in m.row_mut(slot) {
                    *x += 0.05;
                }
            }
        }
        b.merge_deltas(&mut [0.0; 8]);
        for (slot, base_row) in base.iter().enumerate() {
            for (got, want) in b.replica(0).row(slot).iter().zip(base_row) {
                assert!((got - (want + 0.15)).abs() < 1e-5, "slot {slot}");
            }
        }
    }

    #[test]
    fn merge_deltas_clips_runaway_movement_to_the_trust_region() {
        // Divergence-regime round: the summed delta's per-element RMS far
        // exceeds DELTA_CLIP_RMS. The merge must scale the movement back
        // onto the bound (direction preserved, magnitude capped) so the
        // exponential feedback loop of correlated overshoot cannot
        // compound across rounds.
        let mut b = bank();
        let base: Vec<Vec<f32>> = (0..3).map(|slot| b.replica(0).row(slot).to_vec()).collect();
        for m in b.replicas_mut() {
            for slot in 0..3 {
                for x in m.row_mut(slot) {
                    *x += 10.0;
                }
            }
        }
        b.merge_deltas(&mut [0.0; 8]);
        // Summed movement is 30.0 per element; clipped RMS must equal the
        // bound exactly: every element moves by DELTA_CLIP_RMS.
        for (slot, base_row) in base.iter().enumerate() {
            for (got, want) in b.replica(0).row(slot).iter().zip(base_row) {
                let moved = got - want;
                assert!(
                    (moved - ReplicaBank::DELTA_CLIP_RMS).abs() < 1e-4,
                    "slot {slot}: moved {moved}, want {}",
                    ReplicaBank::DELTA_CLIP_RMS
                );
            }
        }
    }

    #[test]
    fn merge_deltas_base_advances_across_rounds() {
        // Round 1: only replica 0 moves. Round 2: only replica 1 moves.
        // With a stale base the second merge would re-count round 1's
        // delta once per replica; the refreshed base must prevent that.
        let source = Matrix::uniform_init(4, 4, 7);
        let mut b = ReplicaBank::gather(2, &source, &[1]);
        let start = b.replica(0).row(0).to_vec();
        b.replicas_mut()[0].row_mut(0)[0] += 0.3;
        b.merge_deltas(&mut [0.0; 4]);
        b.replicas_mut()[1].row_mut(0)[1] += 0.4;
        b.merge_deltas(&mut [0.0; 4]);
        let got = b.replica(0).row(0).to_vec();
        assert!((got[0] - (start[0] + 0.3)).abs() < 1e-6);
        assert!((got[1] - (start[1] + 0.4)).abs() < 1e-6);
    }

    #[test]
    fn merge_deltas_of_identical_replicas_changes_nothing() {
        let source = Matrix::uniform_init(6, 8, 42);
        let mut b = ReplicaBank::gather(2, &source, &[4, 0, 2]);
        let before: Vec<f32> = b.replica(1).as_slice().to_vec();
        b.merge_deltas(&mut [0.0; 8]);
        let after: Vec<f32> = b.replica(1).as_slice().to_vec();
        assert_eq!(before, after);
    }

    #[test]
    fn publish_row_writes_the_merged_value() {
        let mut b = bank();
        b.merge_mean(&mut [0.0; 8]);
        let mut canonical = Matrix::zeros(6, 8);
        b.publish_row(1, &mut canonical, 5);
        assert_eq!(canonical.row(5), b.replica(0).row(1));
    }

    #[test]
    fn empty_bank_merges_nothing() {
        let source = Matrix::uniform_init(2, 4, 1);
        let mut b = ReplicaBank::gather(2, &source, &[]);
        assert_eq!(b.merge_mean(&mut [0.0; 4]), 0);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let source = Matrix::uniform_init(2, 4, 1);
        let _ = ReplicaBank::gather(0, &source, &[0]);
    }
}
