//! int8 scale-per-row quantized embedding storage (DESIGN.md §11).
//!
//! Each row stores `dim` signed bytes plus one f32 scale: `scale =
//! max_abs / 127`, `q[d] = round(x[d] / scale)` clamped to `[-127, 127]`.
//! Dequantization is `q[d] * scale`, so per-element error is bounded by
//! `scale / 2` (round-to-nearest). Because SISG similarity is a pure dot
//! product, that bound translates directly into a bounded score
//! perturbation: `|dot(x, y) − s_x·s_y·dot_q8(qx, qy)| ≤ (s_x‖y‖₁ +
//! s_y‖x‖₁) / 2` — small enough that an f32 re-rank of the top candidates
//! recovers exact order (see `crates/ann::qhnsw`).
//!
//! Two storage shapes share the [`QuantRows`] accessor trait:
//!
//! - [`QuantMatrix`] — owned, built by quantizing a [`Matrix`] row by row.
//! - `codec::QuantBlob` — a zero-copy view over the little-endian
//!   serialized form (the mmap-friendly serving path).
//!
//! The hot accessors are whole-row slices, never per-element calls —
//! `xtask lint` rule 6 (`kernel-path`) bans element accessors in this
//! file so scoring loops stay vectorizable.

use crate::matrix::Matrix;

/// Row-oriented access to int8-quantized vectors — the interface the
/// quantized kernels and the in-shard ANN index score against.
pub trait QuantRows {
    /// Number of rows.
    fn rows(&self) -> usize;
    /// Elements per row.
    fn dim(&self) -> usize;
    /// Quantized row `i` as a contiguous byte slice.
    fn row(&self, i: usize) -> &[i8];
    /// Dequantization scale of row `i`.
    fn scale(&self, i: usize) -> f32;

    /// Heap bytes per item for the quantized payload (`dim` bytes of
    /// weights + 4 bytes of scale), independent of storage shape.
    fn bytes_per_row(&self) -> usize {
        self.dim() + std::mem::size_of::<f32>()
    }
}

/// Quantizes one row into `out`, returning the scale. `out.len()` must
/// equal `row.len()`.
///
/// An all-zero row quantizes to scale `0.0` and all-zero bytes;
/// dequantization maps it back to exact zeros.
///
/// # Panics
/// Panics when the slices differ in length.
pub fn quantize_row(row: &[f32], out: &mut [i8]) -> f32 {
    assert_eq!(row.len(), out.len(), "length mismatch");
    let mut max_abs = 0.0f32;
    for &v in row {
        let a = v.abs();
        if a > max_abs {
            max_abs = a;
        }
    }
    if max_abs == 0.0 || !max_abs.is_finite() {
        out.fill(0);
        return 0.0;
    }
    let scale = max_abs / 127.0;
    let inv = 127.0 / max_abs;
    for (slot, &v) in out.iter_mut().zip(row) {
        *slot = (v * inv).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// Dequantizes a row produced by [`quantize_row`] into `out`.
///
/// # Panics
/// Panics when the slices differ in length.
pub fn dequantize_row(q: &[i8], scale: f32, out: &mut [f32]) {
    assert_eq!(q.len(), out.len(), "length mismatch");
    for (slot, &b) in out.iter_mut().zip(q) {
        *slot = b as f32 * scale;
    }
}

/// An owned int8 scale-per-row quantized matrix.
#[derive(Debug, Clone)]
pub struct QuantMatrix {
    data: Box<[i8]>,
    scales: Box<[f32]>,
    rows: usize,
    dim: usize,
}

impl QuantMatrix {
    /// Quantizes every row of `m`.
    pub fn from_matrix(m: &Matrix) -> Self {
        Self::from_rows(m.rows(), m.dim(), |i| m.row(i))
    }

    /// Quantizes `rows` rows of width `dim` produced by `row_at`.
    ///
    /// # Panics
    /// Panics when any produced row's length differs from `dim`.
    pub fn from_rows<'a>(rows: usize, dim: usize, row_at: impl Fn(usize) -> &'a [f32]) -> Self {
        let mut data = vec![0i8; rows * dim].into_boxed_slice();
        let mut scales = vec![0.0f32; rows].into_boxed_slice();
        for i in 0..rows {
            scales[i] = quantize_row(row_at(i), &mut data[i * dim..(i + 1) * dim]);
        }
        Self {
            data,
            scales,
            rows,
            dim,
        }
    }

    /// Rebuilds from raw parts (the codec's owned-decode path).
    ///
    /// # Panics
    /// Panics when `data.len() != rows * dim` or `scales.len() != rows`.
    pub fn from_parts(rows: usize, dim: usize, data: Vec<i8>, scales: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * dim, "length mismatch");
        assert_eq!(scales.len(), rows, "length mismatch");
        Self {
            data: data.into_boxed_slice(),
            scales: scales.into_boxed_slice(),
            rows,
            dim,
        }
    }

    /// All quantized weights, row-major.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Per-row scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }
}

impl QuantRows for QuantMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn row(&self, i: usize) -> &[i8] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    #[inline]
    fn scale(&self, i: usize) -> f32 {
        self.scales[i]
    }
}

/// One quantized query vector, ready to score against a [`QuantRows`]
/// store with [`crate::kernels::dot_q8`].
#[derive(Debug, Clone)]
pub struct QuantQuery {
    q: Vec<i8>,
    scale: f32,
}

impl QuantQuery {
    /// Quantizes `query` once; reuse across every row it scores.
    pub fn new(query: &[f32]) -> Self {
        let mut q = vec![0i8; query.len()];
        let scale = quantize_row(query, &mut q);
        Self { q, scale }
    }

    /// The quantized weights.
    #[inline]
    pub fn weights(&self) -> &[i8] {
        &self.q
    }

    /// The query's dequantization scale.
    #[inline]
    pub fn scale(&self) -> f32 {
        self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_row_roundtrips_exactly() {
        let row = [0.0f32; 9];
        let mut q = [0i8; 9];
        let scale = quantize_row(&row, &mut q);
        assert_eq!(scale, 0.0);
        let mut back = [1.0f32; 9];
        dequantize_row(&q, scale, &mut back);
        assert_eq!(back, [0.0f32; 9]);
    }

    #[test]
    fn max_abs_element_hits_127() {
        let row = [0.5f32, -2.0, 1.0];
        let mut q = [0i8; 3];
        let scale = quantize_row(&row, &mut q);
        assert_eq!(q[1], -127);
        assert!((scale - 2.0 / 127.0).abs() < 1e-9);
    }

    #[test]
    fn quant_matrix_matches_per_row_quantization() {
        let m = Matrix::uniform_init(13, 7, 5);
        let qm = QuantMatrix::from_matrix(&m);
        assert_eq!(qm.rows(), 13);
        assert_eq!(qm.dim(), 7);
        assert_eq!(qm.bytes_per_row(), 11);
        for i in 0..13 {
            let mut q = vec![0i8; 7];
            let s = quantize_row(m.row(i), &mut q);
            assert_eq!(qm.row(i), &q[..]);
            assert_eq!(qm.scale(i).to_bits(), s.to_bits());
        }
    }

    proptest! {
        // The ISSUE-level contract: per-element reconstruction error is
        // bounded by half the row scale (round-to-nearest), with a hair of
        // slack for the f32 arithmetic in the bound itself.
        #[test]
        fn roundtrip_error_is_at_most_half_scale(
            row in proptest::collection::vec(-100.0f32..100.0, 1..64)
        ) {
            let mut q = vec![0i8; row.len()];
            let scale = quantize_row(&row, &mut q);
            let mut back = vec![0.0f32; row.len()];
            dequantize_row(&q, scale, &mut back);
            let bound = scale as f64 * 0.5 * (1.0 + 1e-5);
            for (&x, &y) in row.iter().zip(&back) {
                let err = (x as f64 - y as f64).abs();
                prop_assert!(
                    err <= bound,
                    "err {err} exceeds scale/2 = {bound} (x={x}, y={y})"
                );
            }
        }

        #[test]
        fn quantized_weights_stay_in_symmetric_range(
            row in proptest::collection::vec(-1e6f32..1e6, 1..32)
        ) {
            let mut q = vec![0i8; row.len()];
            quantize_row(&row, &mut q);
            for &b in &q {
                prop_assert!((-127..=127).contains(&(b as i32)));
            }
        }
    }
}
