//! Vector math for the retrieval / evaluation / serving paths, backed by
//! the unrolled kernels in [`crate::kernels`].
//!
//! [`dot`] here uses the reduction-reordering 4-accumulator kernel — fast,
//! deterministic within a build, but *not* the bit-reproducible serial
//! order the training loops require. Training goes through the
//! order-preserving kernels on [`crate::matrix::RowPtr`] and in
//! [`crate::kernels`] instead (see DESIGN.md §8).

use crate::kernels;

/// Inner product `x · y` (unrolled, reduction-reordered — serving path).
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    kernels::dot(x, y)
}

/// `y += a * x`.
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    kernels::axpy(a, x, y)
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm(x: &[f32]) -> f32 {
    dot(x, x).sqrt()
}

/// Cosine similarity; zero when either vector is all-zero.
#[inline]
pub fn cosine(x: &[f32], y: &[f32]) -> f32 {
    let nx = norm(x);
    let ny = norm(y);
    if nx == 0.0 || ny == 0.0 {
        0.0
    } else {
        dot(x, y) / (nx * ny)
    }
}

/// Scales `x` in place by `a`.
#[inline]
pub fn scale(x: &mut [f32], a: f32) {
    kernels::scale(x, a)
}

/// Normalizes `x` to unit length in place; leaves all-zero vectors alone.
#[inline]
pub fn normalize(x: &mut [f32]) {
    let n = norm(x);
    if n > 0.0 {
        scale(x, 1.0 / n);
    }
}

/// Accumulates `src` into `dst` (`dst += src`).
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    kernels::add_assign(dst, src);
}

/// Element-wise mean of `vectors` (each of length `dim`) into a new vector.
/// Returns a zero vector when `vectors` is empty.
pub fn mean(vectors: &[&[f32]], dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dim];
    if vectors.is_empty() {
        return out;
    }
    for v in vectors {
        add_assign(&mut out, v);
    }
    scale(&mut out, 1.0 / vectors.len() as f32);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn cosine_bounds_and_zero_handling() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn normalize_unit_length() {
        let mut x = vec![3.0, 4.0];
        normalize(&mut x);
        assert!((norm(&x) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn mean_of_vectors() {
        let a = [1.0f32, 3.0];
        let b = [3.0f32, 5.0];
        let m = mean(&[&a, &b], 2);
        assert_eq!(m, vec![2.0, 4.0]);
        assert_eq!(mean(&[], 2), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
