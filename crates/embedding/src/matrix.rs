//! A flat row-major `f32` matrix with Hogwild-style shared mutation.
//!
//! Embedding matrices are stored as one contiguous allocation; row `i` is
//! the embedding of token `i`. Parallel SGNS training follows the Hogwild
//! recipe (lock-free, racy-but-benign updates, as in the original word2vec
//! code): [`Matrix::row_mut_shared`] hands out overlapping mutable views
//! across threads. The race is bounded — concurrent `+=` on `f32` rows may
//! lose individual updates but cannot corrupt memory or produce values not
//! written by some thread.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::UnsafeCell;

/// A dense `rows × dim` matrix of `f32`.
pub struct Matrix {
    data: UnsafeCell<Vec<f32>>,
    rows: usize,
    dim: usize,
}

// SAFETY: concurrent access is only exposed through `row_shared` /
// `row_mut_shared`, whose contract documents the Hogwild data-race model;
// all other accessors require `&mut self` or return shared `&[f32]`.
unsafe impl Sync for Matrix {}
unsafe impl Send for Matrix {}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        Self {
            data: UnsafeCell::new(vec![0.0; rows * dim]),
            rows,
            dim,
        }
    }

    /// Creates a matrix with entries uniform in `[-0.5/dim, 0.5/dim)` — the
    /// standard word2vec input-matrix initialization.
    pub fn uniform_init(rows: usize, dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let half = 0.5 / dim as f32;
        let data: Vec<f32> = (0..rows * dim)
            .map(|_| rng.gen_range(-half..half))
            .collect();
        Self {
            data: UnsafeCell::new(data),
            rows,
            dim,
        }
    }

    /// Builds a matrix from raw row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * dim`.
    pub fn from_data(rows: usize, dim: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * dim, "data length mismatch");
        Self {
            data: UnsafeCell::new(data),
            rows,
            dim,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i` as an immutable slice.
    ///
    /// # Panics
    /// Panics when `i >= rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        // SAFETY: within bounds; aliasing with concurrent writers is the
        // documented Hogwild model.
        unsafe {
            let ptr = (*self.data.get()).as_ptr().add(i * self.dim);
            std::slice::from_raw_parts(ptr, self.dim)
        }
    }

    /// Row `i` as a mutable slice through `&mut self` (single-threaded path).
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        let dim = self.dim;
        let data = self.data.get_mut();
        &mut data[i * dim..(i + 1) * dim]
    }

    /// Row `i` as a mutable slice through a shared reference — the Hogwild
    /// entry point.
    ///
    /// # Safety
    /// Callers must accept the Hogwild data-race model: multiple threads may
    /// hold overlapping views and perform unsynchronized `f32` reads/writes.
    /// Lost updates are possible; memory unsafety is not, as long as no
    /// caller reads a row while another resizes the matrix (the API offers
    /// no resizing).
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn row_mut_shared(&self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        let ptr = (*self.data.get()).as_mut_ptr().add(i * self.dim);
        std::slice::from_raw_parts_mut(ptr, self.dim)
    }

    /// The full row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: same aliasing model as `row`.
        unsafe { (*self.data.get()).as_slice() }
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data.into_inner()
    }

    /// Copies row `src` of `other` into row `dst` of `self`.
    pub fn copy_row_from(&mut self, dst: usize, other: &Matrix, src: usize) {
        assert_eq!(self.dim, other.dim, "dim mismatch");
        let row = other.row(src).to_vec();
        self.row_mut(dst).copy_from_slice(&row);
    }
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        Self {
            data: UnsafeCell::new(self.as_slice().to_vec()),
            rows: self.rows,
            dim: self.dim,
        }
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Matrix")
            .field("rows", &self.rows)
            .field("dim", &self.dim)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_rows() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.dim(), 4);
        assert!(m.row(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn uniform_init_is_bounded_and_seeded() {
        let a = Matrix::uniform_init(10, 8, 1);
        let b = Matrix::uniform_init(10, 8, 1);
        let c = Matrix::uniform_init(10, 8, 2);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
        let bound = 0.5 / 8.0;
        assert!(a.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn row_mut_writes_are_visible() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0]);
        assert_eq!(m.row(1), &[1.0, 2.0]);
        assert_eq!(m.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn shared_mutation_across_threads() {
        let m = Matrix::zeros(8, 4);
        std::thread::scope(|s| {
            for t in 0..4 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..8 {
                        if i % 4 == t {
                            // Disjoint rows per thread: no race at all here.
                            let row = unsafe { m.row_mut_shared(i) };
                            row.fill(i as f32);
                        }
                    }
                });
            }
        });
        for i in 0..8 {
            assert!(m.row(i).iter().all(|&v| v == i as f32));
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let m = Matrix::zeros(1, 1);
        let _ = m.row(1);
    }

    #[test]
    fn copy_row_from_other() {
        let src = Matrix::uniform_init(2, 3, 9);
        let mut dst = Matrix::zeros(2, 3);
        dst.copy_row_from(0, &src, 1);
        assert_eq!(dst.row(0), src.row(1));
    }
}
