//! A flat row-major `f32` matrix with *sound* Hogwild-style shared mutation.
//!
//! Embedding matrices are stored as one contiguous allocation of
//! [`AtomicU32`] cells holding `f32` bit patterns; row `i` is the embedding
//! of token `i`. Parallel SGNS training follows the Hogwild recipe
//! (lock-free, racy-but-benign updates, as in the original word2vec code),
//! exposed through [`Matrix::row_ptr`] / [`RowPtr`].
//!
//! # Soundness contract
//!
//! The previous design handed out aliasing `&mut [f32]` slices across
//! threads — a data race and therefore undefined behavior under Rust's
//! memory model, however benign it looks in practice. This design never
//! materializes an aliased `&mut`:
//!
//! - Concurrent access goes through [`RowPtr`], whose accessors are
//!   `Relaxed` per-element atomic loads/stores of the `f32` bit pattern.
//!   On every mainstream ISA these compile to the same plain 32-bit moves
//!   the unsound version emitted, so the Hogwild inner loop costs the same
//!   — but each individual read/write is now a *defined* atomic access.
//!   Racing threads may still interleave read-modify-write sequences and
//!   lose updates (that is the Hogwild trade), yet every value observed is
//!   one some thread actually wrote: no tearing, no UB.
//! - [`Matrix::row`] / [`Matrix::as_slice`] return plain `&[f32]` views
//!   for the quiescent phases (initialization, evaluation, serialization,
//!   between-epoch barriers). Their contract is that no thread is
//!   concurrently writing; this is a *logical* requirement for fresh
//!   values, not a soundness precondition of the caller — the unsafe cast
//!   below is justified by layout compatibility alone.
//! - [`Matrix::row_mut`] requires `&mut self` and is therefore
//!   race-free by construction.
//!
//! `Matrix` is `Send + Sync` automatically (atomics are `Sync`); the old
//! blanket `unsafe impl` is gone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU32, Ordering};

/// A dense `rows × dim` matrix of `f32`, stored as atomic bit cells so
/// that Hogwild updates are defined behavior.
pub struct Matrix {
    data: Box<[AtomicU32]>,
    rows: usize,
    dim: usize,
}

/// A shared, lock-free view of one matrix row — the Hogwild entry point.
///
/// Copyable and cheap; obtained from [`Matrix::row_ptr`]. All accessors
/// use `Relaxed` per-element atomic operations, so concurrent use from
/// many threads is sound. [`RowPtr::add_elem`] is a non-atomic
/// read-modify-write *sequence* (load, add, store): concurrent adds to
/// the same cell may lose one of the updates, which is exactly the
/// approximation Hogwild SGD tolerates.
///
/// # Kernel contract (DESIGN.md §8)
///
/// The batched methods ([`RowPtr::dot_slice`], [`RowPtr::axpy_slice`],
/// [`RowPtr::fused_grad_step`], [`RowPtr::accumulate_scaled`], …) are the
/// *only* way hot loops should touch a row; per-element access through
/// `get_elem`/`set_elem`/`add_elem` in `crates/sgns` and `crates/eges` is
/// rejected by `xtask lint`. Reductions here preserve strict serial
/// summation order so the single-threaded training path stays
/// bit-reproducible — the batched speedup comes from [`dot_slice_x4`],
/// which interleaves four *independent* serial chains, never from
/// reordering one chain. Elementwise kernels are unrolled 4-wide, which
/// cannot change results (each element's ops keep their order).
#[derive(Clone, Copy)]
pub struct RowPtr<'a> {
    cells: &'a [AtomicU32],
}

impl<'a> RowPtr<'a> {
    /// Number of elements in the row.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the row has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reads element `d` (relaxed atomic load). Cold-path accessor: hot
    /// loops must use the batched kernels (enforced by `xtask lint` in
    /// the training crates).
    ///
    /// # Panics
    /// Panics when `d >= len()`.
    #[inline]
    pub fn get_elem(&self, d: usize) -> f32 {
        // ORDERING: Relaxed — independent f32 bit-cells; Hogwild tolerates stale
        // reads and lost updates, and no other memory is published through these
        // atomics (DESIGN.md §4). Word-width atomicity alone rules out tearing.
        f32::from_bits(self.cells[d].load(Ordering::Relaxed))
    }

    /// Writes element `d` (relaxed atomic store). Cold-path accessor;
    /// see [`RowPtr::get_elem`].
    ///
    /// # Panics
    /// Panics when `d >= len()`.
    #[inline]
    pub fn set_elem(&self, d: usize, v: f32) {
        // ORDERING: Relaxed — same Hogwild bit-cell argument as above.
        self.cells[d].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` to element `d` as a load/add/store sequence.
    /// Cold-path accessor; see [`RowPtr::get_elem`].
    ///
    /// Not an atomic fetch-add: a concurrent update between the load and
    /// the store is overwritten (a lost update, permitted by Hogwild).
    #[inline]
    pub fn add_elem(&self, d: usize, delta: f32) {
        self.set_elem(d, self.get_elem(d) + delta);
    }

    /// Copies the row into `dst`.
    ///
    /// # Panics
    /// Panics when `dst.len() != len()`.
    #[inline]
    pub fn load_into(&self, dst: &mut [f32]) {
        assert_eq!(dst.len(), self.cells.len(), "length mismatch");
        // ORDERING: Relaxed — same Hogwild bit-cell argument as above.
        for (out, cell) in dst.iter_mut().zip(self.cells) {
            *out = f32::from_bits(cell.load(Ordering::Relaxed));
        }
    }

    /// Overwrites the row from `src`.
    ///
    /// # Panics
    /// Panics when `src.len() != len()`.
    #[inline]
    pub fn store_from(&self, src: &[f32]) {
        assert_eq!(src.len(), self.cells.len(), "length mismatch");
        // ORDERING: Relaxed — same Hogwild bit-cell argument as above.
        for (cell, &v) in self.cells.iter().zip(src) {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Dot product of two rows via relaxed loads.
    ///
    /// # Examples
    /// ```
    /// use sisg_embedding::Matrix;
    ///
    /// let m = Matrix::from_data(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    /// let d = m.row_ptr(0).dot(&m.row_ptr(1));
    /// assert_eq!(d, 1.0 * 4.0 + 2.0 * 5.0 + 3.0 * 6.0);
    /// ```
    ///
    /// # Panics
    /// Panics when the rows differ in length.
    #[inline]
    pub fn dot(&self, other: &RowPtr<'_>) -> f32 {
        assert_eq!(self.len(), other.len(), "length mismatch");
        let mut acc = 0.0f32;
        // ORDERING: Relaxed — same Hogwild bit-cell argument as above.
        for (a, b) in self.cells.iter().zip(other.cells) {
            acc += f32::from_bits(a.load(Ordering::Relaxed))
                * f32::from_bits(b.load(Ordering::Relaxed));
        }
        acc
    }

    /// Dot product of the row with a plain slice via relaxed loads —
    /// THE training dot kernel. Accumulation is a strict left-to-right
    /// serial chain; this order is contractual (the golden-checksum test
    /// in `crates/sgns` pins it). To compute several dots fast, batch
    /// independent rows through [`dot_slice_x4`] rather than reordering
    /// this reduction.
    ///
    /// # Examples
    /// ```
    /// use sisg_embedding::Matrix;
    ///
    /// let m = Matrix::from_data(1, 3, vec![1.0, 2.0, 3.0]);
    /// assert_eq!(m.row_ptr(0).dot_slice(&[1.0, 0.0, -1.0]), 1.0 - 3.0);
    /// ```
    ///
    /// # Panics
    /// Panics when `xs.len() != len()`.
    #[inline]
    pub fn dot_slice(&self, xs: &[f32]) -> f32 {
        assert_eq!(self.len(), xs.len(), "length mismatch");
        let mut acc = 0.0f32;
        // ORDERING: Relaxed — same Hogwild bit-cell argument as above.
        for (cell, &x) in self.cells.iter().zip(xs) {
            acc += f32::from_bits(cell.load(Ordering::Relaxed)) * x;
        }
        acc
    }

    /// `self += a · x` over a whole row — the batched row-row update.
    /// One length check instead of a bounds check per element; each
    /// element update is still an independent relaxed load/add/store
    /// (lost updates possible, tearing not). Unrolled 4-wide: elementwise,
    /// so results are bit-identical to the scalar loop.
    ///
    /// # Examples
    /// ```
    /// use sisg_embedding::Matrix;
    ///
    /// let m = Matrix::from_data(2, 2, vec![1.0, 2.0, 10.0, 20.0]);
    /// // row 1 += 0.5 · row 0
    /// m.row_ptr(1).axpy_row(0.5, &m.row_ptr(0));
    /// assert_eq!(m.row(1), &[10.5, 21.0]);
    /// ```
    ///
    /// # Panics
    /// Panics when the rows differ in length.
    #[inline]
    pub fn axpy_row(&self, a: f32, x: &RowPtr<'_>) {
        assert_eq!(self.len(), x.len(), "length mismatch");
        let mut cc = self.cells.chunks_exact(4);
        let mut xc = x.cells.chunks_exact(4);
        // ORDERING: Relaxed — same Hogwild bit-cell argument as above.
        for (cells, xs) in (&mut cc).zip(&mut xc) {
            let v0 = f32::from_bits(cells[0].load(Ordering::Relaxed))
                + a * f32::from_bits(xs[0].load(Ordering::Relaxed));
            let v1 = f32::from_bits(cells[1].load(Ordering::Relaxed))
                + a * f32::from_bits(xs[1].load(Ordering::Relaxed));
            let v2 = f32::from_bits(cells[2].load(Ordering::Relaxed))
                + a * f32::from_bits(xs[2].load(Ordering::Relaxed));
            let v3 = f32::from_bits(cells[3].load(Ordering::Relaxed))
                + a * f32::from_bits(xs[3].load(Ordering::Relaxed));
            cells[0].store(v0.to_bits(), Ordering::Relaxed);
            cells[1].store(v1.to_bits(), Ordering::Relaxed);
            cells[2].store(v2.to_bits(), Ordering::Relaxed);
            cells[3].store(v3.to_bits(), Ordering::Relaxed);
        }
        // ORDERING: Relaxed — same Hogwild bit-cell argument as above.
        for (cell, xcell) in cc.remainder().iter().zip(xc.remainder()) {
            let v = f32::from_bits(cell.load(Ordering::Relaxed))
                + a * f32::from_bits(xcell.load(Ordering::Relaxed));
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// `self += a · xs` with a plain-slice right-hand side. Unrolled
    /// 4-wide (elementwise ⇒ bit-identical to the scalar loop).
    ///
    /// # Examples
    /// ```
    /// use sisg_embedding::Matrix;
    ///
    /// let m = Matrix::from_data(1, 2, vec![1.0, 2.0]);
    /// m.row_ptr(0).axpy_slice(-1.0, &[0.5, 0.5]);
    /// assert_eq!(m.row(0), &[0.5, 1.5]);
    /// ```
    ///
    /// # Panics
    /// Panics when `xs.len() != len()`.
    #[inline]
    pub fn axpy_slice(&self, a: f32, xs: &[f32]) {
        assert_eq!(self.len(), xs.len(), "length mismatch");
        let mut cc = self.cells.chunks_exact(4);
        let mut xc = xs.chunks_exact(4);
        // ORDERING: Relaxed — same Hogwild bit-cell argument as above.
        for (cells, x) in (&mut cc).zip(&mut xc) {
            let v0 = f32::from_bits(cells[0].load(Ordering::Relaxed)) + a * x[0];
            let v1 = f32::from_bits(cells[1].load(Ordering::Relaxed)) + a * x[1];
            let v2 = f32::from_bits(cells[2].load(Ordering::Relaxed)) + a * x[2];
            let v3 = f32::from_bits(cells[3].load(Ordering::Relaxed)) + a * x[3];
            cells[0].store(v0.to_bits(), Ordering::Relaxed);
            cells[1].store(v1.to_bits(), Ordering::Relaxed);
            cells[2].store(v2.to_bits(), Ordering::Relaxed);
            cells[3].store(v3.to_bits(), Ordering::Relaxed);
        }
        // ORDERING: Relaxed — same Hogwild bit-cell argument as above.
        for (cell, &x) in cc.remainder().iter().zip(xc.remainder()) {
            let v = f32::from_bits(cell.load(Ordering::Relaxed)) + a * x;
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// `dst += a · self` — accumulates the row, scaled, into a caller-owned
    /// buffer (the gradient-accumulation step of SGNS). Unrolled 4-wide
    /// (elementwise ⇒ bit-identical to the scalar loop).
    ///
    /// # Examples
    /// ```
    /// use sisg_embedding::Matrix;
    ///
    /// let m = Matrix::from_data(1, 2, vec![3.0, 4.0]);
    /// let mut grad = vec![1.0f32, 1.0];
    /// m.row_ptr(0).accumulate_scaled(2.0, &mut grad);
    /// assert_eq!(grad, [7.0, 9.0]);
    /// ```
    ///
    /// # Panics
    /// Panics when `dst.len() != len()`.
    #[inline]
    pub fn accumulate_scaled(&self, a: f32, dst: &mut [f32]) {
        assert_eq!(self.len(), dst.len(), "length mismatch");
        let mut dc = dst.chunks_exact_mut(4);
        let mut cc = self.cells.chunks_exact(4);
        // ORDERING: Relaxed — same Hogwild bit-cell argument as above.
        for (slots, cells) in (&mut dc).zip(&mut cc) {
            slots[0] += a * f32::from_bits(cells[0].load(Ordering::Relaxed));
            slots[1] += a * f32::from_bits(cells[1].load(Ordering::Relaxed));
            slots[2] += a * f32::from_bits(cells[2].load(Ordering::Relaxed));
            slots[3] += a * f32::from_bits(cells[3].load(Ordering::Relaxed));
        }
        // ORDERING: Relaxed — same Hogwild bit-cell argument as above.
        for (slot, cell) in dc.into_remainder().iter_mut().zip(cc.remainder()) {
            *slot += a * f32::from_bits(cell.load(Ordering::Relaxed));
        }
    }

    /// The fused SGD update of one sample step, Hogwild path: per element,
    /// `grad[d] += g · self[d]` using the *pre-update* value, then
    /// `self[d] += g · v[d]` — one pass over the row's cache lines instead
    /// of the separate [`RowPtr::accumulate_scaled`] + [`RowPtr::axpy_slice`]
    /// passes. Per-element op order matches the two-pass sequence exactly
    /// (`v` is a plain slice, so the second pass cannot observe the first's
    /// writes), hence bit-identical. Unrolled 4-wide.
    ///
    /// # Panics
    /// Panics when `v.len()` or `grad.len()` differ from `len()`.
    #[inline]
    pub fn fused_grad_step(&self, g: f32, v: &[f32], grad: &mut [f32]) {
        assert_eq!(self.len(), v.len(), "length mismatch");
        assert_eq!(self.len(), grad.len(), "length mismatch");
        let mut cc = self.cells.chunks_exact(4);
        let mut vc = v.chunks_exact(4);
        let mut gc = grad.chunks_exact_mut(4);
        // ORDERING: Relaxed — same Hogwild bit-cell argument as above.
        for ((cells, vs), gs) in (&mut cc).zip(&mut vc).zip(&mut gc) {
            let o0 = f32::from_bits(cells[0].load(Ordering::Relaxed));
            let o1 = f32::from_bits(cells[1].load(Ordering::Relaxed));
            let o2 = f32::from_bits(cells[2].load(Ordering::Relaxed));
            let o3 = f32::from_bits(cells[3].load(Ordering::Relaxed));
            gs[0] += g * o0;
            gs[1] += g * o1;
            gs[2] += g * o2;
            gs[3] += g * o3;
            cells[0].store((o0 + g * vs[0]).to_bits(), Ordering::Relaxed);
            cells[1].store((o1 + g * vs[1]).to_bits(), Ordering::Relaxed);
            cells[2].store((o2 + g * vs[2]).to_bits(), Ordering::Relaxed);
            cells[3].store((o3 + g * vs[3]).to_bits(), Ordering::Relaxed);
        }
        for ((cell, &x), slot) in cc
            .remainder()
            .iter()
            .zip(vc.remainder())
            .zip(gc.into_remainder())
        {
            // ORDERING: Relaxed — same Hogwild bit-cell argument as above.
            let old = f32::from_bits(cell.load(Ordering::Relaxed));
            *slot += g * old;
            cell.store((old + g * x).to_bits(), Ordering::Relaxed);
        }
    }
}

/// Four order-preserving [`RowPtr::dot_slice`] products against a shared
/// right-hand side, with the four serial accumulation chains interleaved
/// for instruction-level parallelism — the batched dot phase of the SGD
/// step. Each result is bit-identical to `rows[i].dot_slice(xs)`; only
/// the scheduling changes, so this is safe on the bit-reproducible
/// training path *when the four rows are known to be distinct* (a row fed
/// to two lanes would observe no writes either way — the kernel only
/// loads — but callers batch steps, and steps write; the distinctness
/// requirement lives in the caller, see `sisg-sgns`).
///
/// # Panics
/// Panics when any row's length differs from `xs.len()`.
#[inline]
pub fn dot_slice_x4(rows: [RowPtr<'_>; 4], xs: &[f32]) -> [f32; 4] {
    for r in &rows {
        assert_eq!(r.len(), xs.len(), "length mismatch");
    }
    let [r0, r1, r2, r3] = rows;
    let mut a0 = 0.0f32;
    let mut a1 = 0.0f32;
    let mut a2 = 0.0f32;
    let mut a3 = 0.0f32;
    let it = r0
        .cells
        .iter()
        .zip(r1.cells)
        .zip(r2.cells)
        .zip(r3.cells)
        .zip(xs);
    // ORDERING: Relaxed — same Hogwild bit-cell argument as above.
    for ((((c0, c1), c2), c3), &x) in it {
        a0 += f32::from_bits(c0.load(Ordering::Relaxed)) * x;
        a1 += f32::from_bits(c1.load(Ordering::Relaxed)) * x;
        a2 += f32::from_bits(c2.load(Ordering::Relaxed)) * x;
        a3 += f32::from_bits(c3.load(Ordering::Relaxed)) * x;
    }
    [a0, a1, a2, a3]
}

impl std::fmt::Debug for RowPtr<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowPtr")
            .field("len", &self.cells.len())
            .finish_non_exhaustive()
    }
}

fn to_cells(data: Vec<f32>) -> Box<[AtomicU32]> {
    data.into_iter()
        .map(|v| AtomicU32::new(v.to_bits()))
        .collect()
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        Self {
            data: (0..rows * dim).map(|_| AtomicU32::new(0)).collect(),
            rows,
            dim,
        }
    }

    /// Creates a matrix with entries uniform in `[-0.5/dim, 0.5/dim)` — the
    /// standard word2vec input-matrix initialization.
    pub fn uniform_init(rows: usize, dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let half = 0.5 / dim as f32;
        let data: Vec<f32> = (0..rows * dim)
            .map(|_| rng.gen_range(-half..half))
            .collect();
        Self {
            data: to_cells(data),
            rows,
            dim,
        }
    }

    /// Builds a matrix from raw row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * dim`.
    pub fn from_data(rows: usize, dim: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * dim, "data length mismatch");
        Self {
            data: to_cells(data),
            rows,
            dim,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i` as a shared lock-free view — sound under concurrent use
    /// from any number of threads (see [`RowPtr`]).
    ///
    /// # Panics
    /// Panics when `i >= rows()`.
    #[inline]
    pub fn row_ptr(&self, i: usize) -> RowPtr<'_> {
        assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        RowPtr {
            cells: &self.data[i * self.dim..(i + 1) * self.dim],
        }
    }

    /// Bounds-checked variant of [`Matrix::row_ptr`]: `None` when
    /// `i >= rows()`.
    #[inline]
    pub fn try_row_ptr(&self, i: usize) -> Option<RowPtr<'_>> {
        if i < self.rows {
            Some(RowPtr {
                cells: &self.data[i * self.dim..(i + 1) * self.dim],
            })
        } else {
            None
        }
    }

    /// Row `i` as an immutable plain slice — the quiescent-phase reader
    /// (initialization, evaluation, serialization). Callers that need
    /// values while writers are active must use [`Matrix::row_ptr`];
    /// this view may observe stale data mid-training but is always
    /// memory-safe.
    ///
    /// # Panics
    /// Panics when `i >= rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        let cells = &self.data[i * self.dim..(i + 1) * self.dim];
        // SAFETY: `AtomicU32` has the same size and alignment as `u32`
        // (guaranteed by std), whose bit patterns we store from `f32`
        // values; reinterpreting the shared slice as `&[f32]` is a pure
        // layout cast. Non-atomic reads of these cells are sound — the
        // only writers go through `&mut self` or `RowPtr`'s atomic stores,
        // and mixing an atomic store with this plain load is a race the
        // quiescence contract above rules out for correctness, while the
        // read itself stays defined for any 32-bit pattern.
        unsafe { std::slice::from_raw_parts(cells.as_ptr().cast::<f32>(), cells.len()) }
    }

    /// Row `i` as a mutable slice through `&mut self` (single-threaded
    /// path; exclusive by construction).
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        let cells = &mut self.data[i * self.dim..(i + 1) * self.dim];
        // SAFETY: same layout argument as `row`; `&mut self` guarantees
        // no other view of the cells exists, so a unique `&mut [f32]` is
        // sound.
        unsafe { std::slice::from_raw_parts_mut(cells.as_mut_ptr().cast::<f32>(), cells.len()) }
    }

    /// The full row-major buffer as a plain slice (quiescent-phase
    /// reader; see [`Matrix::row`] for the contract).
    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: same layout argument as `row`, over the whole buffer.
        unsafe { std::slice::from_raw_parts(self.data.as_ptr().cast::<f32>(), self.data.len()) }
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
            .iter()
            // ORDERING: Relaxed — same Hogwild bit-cell argument as above.
            .map(|cell| f32::from_bits(cell.load(Ordering::Relaxed)))
            .collect()
    }

    /// Copies row `src` of `other` into row `dst` of `self`.
    pub fn copy_row_from(&mut self, dst: usize, other: &Matrix, src: usize) {
        assert_eq!(self.dim, other.dim, "dim mismatch");
        let row = other.row(src).to_vec();
        self.row_mut(dst).copy_from_slice(&row);
    }
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        Self {
            data: to_cells(self.as_slice().to_vec()),
            rows: self.rows,
            dim: self.dim,
        }
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Matrix")
            .field("rows", &self.rows)
            .field("dim", &self.dim)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_rows() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.dim(), 4);
        assert!(m.row(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn uniform_init_is_bounded_and_seeded() {
        let a = Matrix::uniform_init(10, 8, 1);
        let b = Matrix::uniform_init(10, 8, 1);
        let c = Matrix::uniform_init(10, 8, 2);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
        let bound = 0.5 / 8.0;
        assert!(a.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn row_mut_writes_are_visible() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0]);
        assert_eq!(m.row(1), &[1.0, 2.0]);
        assert_eq!(m.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn row_ptr_reads_and_writes() {
        let m = Matrix::from_data(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = m.row_ptr(1);
        assert_eq!(r.len(), 3);
        assert_eq!(r.get_elem(0), 4.0);
        r.set_elem(0, 9.0);
        r.add_elem(1, 0.5);
        assert_eq!(m.row(1), &[9.0, 5.5, 6.0]);
        let mut buf = [0.0f32; 3];
        r.load_into(&mut buf);
        assert_eq!(buf, [9.0, 5.5, 6.0]);
        r.store_from(&[1.0, 1.0, 1.0]);
        assert_eq!(m.row(1), &[1.0, 1.0, 1.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0], "row 0 untouched");
    }

    #[test]
    fn row_ptr_dot() {
        let m = Matrix::from_data(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let d = m.row_ptr(0).dot(&m.row_ptr(1));
        assert_eq!(d, 4.0 + 10.0 + 18.0);
    }

    #[test]
    fn row_ptr_batched_kernels_match_scalar() {
        let m = Matrix::from_data(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r0 = m.row_ptr(0);
        let r1 = m.row_ptr(1);
        assert_eq!(r0.dot_slice(&[4.0, 5.0, 6.0]), r0.dot(&r1));

        r1.axpy_row(2.0, &r0);
        assert_eq!(m.row(1), &[6.0, 9.0, 12.0]);

        r1.axpy_slice(-1.0, &[1.0, 1.0, 1.0]);
        assert_eq!(m.row(1), &[5.0, 8.0, 11.0]);

        let mut acc = vec![1.0f32; 3];
        r0.accumulate_scaled(3.0, &mut acc);
        assert_eq!(acc, [4.0, 7.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_slice_length_mismatch_panics() {
        let m = Matrix::zeros(1, 3);
        m.row_ptr(0).axpy_slice(1.0, &[0.0; 2]);
    }

    #[test]
    fn shared_mutation_across_threads() {
        let m = Matrix::zeros(8, 4);
        std::thread::scope(|s| {
            for t in 0..4 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..8 {
                        if i % 4 == t {
                            let row = m.row_ptr(i);
                            for d in 0..row.len() {
                                row.set_elem(d, i as f32);
                            }
                        }
                    }
                });
            }
        });
        for i in 0..8 {
            assert!(m.row(i).iter().all(|&v| v == i as f32));
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let m = Matrix::zeros(1, 1);
        let _ = m.row(1);
    }

    #[test]
    fn try_row_ptr_bounds() {
        let m = Matrix::zeros(2, 2);
        assert!(m.try_row_ptr(1).is_some());
        assert!(m.try_row_ptr(2).is_none());
    }

    #[test]
    fn copy_row_from_other() {
        let src = Matrix::uniform_init(2, 3, 9);
        let mut dst = Matrix::zeros(2, 3);
        dst.copy_row_from(0, &src, 1);
        assert_eq!(dst.row(0), src.row(1));
    }

    #[test]
    fn dot_slice_x4_matches_four_dot_slices() {
        // Awkward dim (not a multiple of 4) to exercise full coverage.
        let m = Matrix::uniform_init(4, 13, 3);
        let xs: Vec<f32> = (0..13).map(|i| (i as f32 * 0.7).cos()).collect();
        let got = dot_slice_x4(
            [m.row_ptr(0), m.row_ptr(1), m.row_ptr(2), m.row_ptr(3)],
            &xs,
        );
        for (r, &g) in got.iter().enumerate() {
            assert_eq!(g.to_bits(), m.row_ptr(r).dot_slice(&xs).to_bits());
        }
    }

    #[test]
    fn fused_grad_step_matches_two_pass_sequence() {
        // The fused kernel must be bit-identical to accumulate_scaled
        // followed by axpy_slice, for dims hitting both unrolled body and
        // remainder.
        for dim in [1usize, 3, 4, 7, 8, 13] {
            let m_fused = Matrix::uniform_init(1, dim, 5);
            let m_two = m_fused.clone();
            let v: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.3).sin()).collect();
            let g = 0.02f32;
            let mut grad_fused = vec![0.1f32; dim];
            let mut grad_two = grad_fused.clone();

            m_fused.row_ptr(0).fused_grad_step(g, &v, &mut grad_fused);
            m_two.row_ptr(0).accumulate_scaled(g, &mut grad_two);
            m_two.row_ptr(0).axpy_slice(g, &v);

            for d in 0..dim {
                assert_eq!(grad_fused[d].to_bits(), grad_two[d].to_bits());
                assert_eq!(
                    m_fused.row(0)[d].to_bits(),
                    m_two.row(0)[d].to_bits(),
                    "dim {dim} element {d}"
                );
            }
        }
    }

    #[test]
    fn unrolled_axpy_handles_remainders() {
        for dim in [1usize, 2, 3, 5, 6, 7, 9] {
            let m = Matrix::zeros(2, dim);
            let xs: Vec<f32> = (0..dim).map(|i| i as f32 + 1.0).collect();
            m.row_ptr(0).axpy_slice(2.0, &xs);
            for d in 0..dim {
                assert_eq!(m.row(0)[d], 2.0 * (d as f32 + 1.0));
            }
            m.row_ptr(1).axpy_row(0.5, &m.row_ptr(0));
            for d in 0..dim {
                assert_eq!(m.row(1)[d], d as f32 + 1.0);
            }
            let mut acc = vec![1.0f32; dim];
            m.row_ptr(1).accumulate_scaled(1.0, &mut acc);
            for (d, &a) in acc.iter().enumerate() {
                assert_eq!(a, 1.0 + d as f32 + 1.0);
            }
        }
    }
}
