//! Compact binary (de)serialization of embedding stores.
//!
//! The production pipeline writes all embeddings daily for downstream
//! consumers; this codec is the equivalent artifact boundary. Layout (all
//! little-endian):
//!
//! ```text
//! magic "SISGEMB1" | u32 rows | u32 dim | rows*dim f32 input | rows*dim f32 output
//! ```
//!
//! A second, mmap-friendly format carries int8 scale-per-row quantized
//! matrices (DESIGN.md §11). Sections start on [`QUANT_ALIGN`]-byte
//! boundaries and the header carries explicit offsets, so a consumer can
//! map the file and serve straight out of it through the zero-copy
//! [`QuantView`] / [`QuantBlob`] — no deserialization pass:
//!
//! ```text
//! offset  0: magic "SISGQNT1"
//! offset  8: u32 rows
//! offset 12: u32 dim
//! offset 16: u32 scales_off   (64; start of the f32 scales section)
//! offset 20: u32 data_off     (aligned start of the i8 weights section)
//! ...        zero padding to scales_off
//! scales_off: rows × f32 le   per-row scales
//! ...        zero padding to data_off
//! data_off:  rows × dim × i8  row-major quantized weights
//! ```

use crate::matrix::Matrix;
use crate::quant::{QuantMatrix, QuantRows};
use crate::store::EmbeddingStore;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// File magic; bump the trailing digit on layout changes.
pub const MAGIC: &[u8; 8] = b"SISGEMB1";

/// Magic of the quantized-store format.
pub const QUANT_MAGIC: &[u8; 8] = b"SISGQNT1";

/// Section alignment of the quantized format — cache-line sized so an
/// mmap'd blob gives naturally aligned scale/weight sections.
pub const QUANT_ALIGN: usize = 64;

/// Errors produced while decoding an embedding blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The blob does not start with [`MAGIC`].
    BadMagic,
    /// The blob is shorter than its header claims.
    Truncated {
        /// Bytes expected from the header.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// Header declares an implausible shape (zero dim with nonzero rows, or
    /// a size overflowing `usize`).
    BadShape,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a SISG embedding blob (bad magic)"),
            CodecError::Truncated { expected, actual } => {
                write!(f, "truncated blob: expected {expected} bytes, got {actual}")
            }
            CodecError::BadShape => write!(f, "implausible matrix shape in header"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes a store into a standalone blob.
///
/// ```
/// use sisg_embedding::{codec, EmbeddingStore};
///
/// let store = EmbeddingStore::new(10, 4, 42);
/// let blob = codec::encode(&store);
/// let back = codec::decode(&blob).unwrap();
/// assert_eq!(back.n_tokens(), 10);
/// assert_eq!(back.input_matrix().as_slice(), store.input_matrix().as_slice());
/// ```
pub fn encode(store: &EmbeddingStore) -> Bytes {
    let rows = store.n_tokens();
    let dim = store.dim();
    let mut buf = BytesMut::with_capacity(MAGIC.len() + 8 + rows * dim * 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(rows as u32);
    buf.put_u32_le(dim as u32);
    for v in store.input_matrix().as_slice() {
        buf.put_f32_le(*v);
    }
    for v in store.output_matrix().as_slice() {
        buf.put_f32_le(*v);
    }
    buf.freeze()
}

/// Deserializes a blob produced by [`encode`].
pub fn decode(mut blob: &[u8]) -> Result<EmbeddingStore, CodecError> {
    if blob.len() < MAGIC.len() + 8 || &blob[..MAGIC.len()] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    blob.advance(MAGIC.len());
    let rows = blob.get_u32_le() as usize;
    let dim = blob.get_u32_le() as usize;
    if rows > 0 && dim == 0 {
        return Err(CodecError::BadShape);
    }
    let floats = rows
        .checked_mul(dim)
        .and_then(|n| n.checked_mul(2))
        .ok_or(CodecError::BadShape)?;
    let expected = floats * 4;
    if blob.remaining() < expected {
        return Err(CodecError::Truncated {
            expected: MAGIC.len() + 8 + expected,
            actual: MAGIC.len() + 8 + blob.remaining(),
        });
    }
    let mut read_matrix = |rows: usize, dim: usize| {
        let mut data = Vec::with_capacity(rows * dim);
        for _ in 0..rows * dim {
            data.push(blob.get_f32_le());
        }
        Matrix::from_data(rows, dim, data)
    };
    let input = read_matrix(rows, dim);
    let output = read_matrix(rows, dim);
    Ok(EmbeddingStore::from_matrices(input, output))
}

fn align_up(v: usize, a: usize) -> usize {
    v.div_ceil(a) * a
}

/// Serializes a quantized matrix into the mmap-friendly format above.
pub fn encode_quant(qm: &QuantMatrix) -> Bytes {
    let rows = qm.rows();
    let dim = qm.dim();
    let scales_off = QUANT_ALIGN;
    let data_off = align_up(scales_off + rows * 4, QUANT_ALIGN);
    let mut buf = BytesMut::with_capacity(data_off + rows * dim);
    buf.put_slice(QUANT_MAGIC);
    buf.put_u32_le(rows as u32);
    buf.put_u32_le(dim as u32);
    buf.put_u32_le(scales_off as u32);
    buf.put_u32_le(data_off as u32);
    let pad = [0u8; QUANT_ALIGN];
    buf.put_slice(&pad[..scales_off - buf.len()]);
    for &s in qm.scales() {
        buf.put_f32_le(s);
    }
    buf.put_slice(&pad[..data_off - buf.len()]);
    // i8 → u8 is a bit-preserving cast; the view path reverses it.
    let weights: Vec<u8> = qm.data().iter().map(|&b| b as u8).collect();
    buf.put_slice(&weights);
    buf.freeze()
}

/// A zero-copy read view over a quantized blob: rows and scales resolve
/// to slices of the underlying bytes, nothing is parsed up front beyond
/// the 24-byte header.
#[derive(Debug, Clone, Copy)]
pub struct QuantView<'a> {
    scales: &'a [u8],
    data: &'a [u8],
    rows: usize,
    dim: usize,
}

impl<'a> QuantView<'a> {
    /// Validates the header and section bounds of `blob` and returns a
    /// view into it. The blob is not copied.
    pub fn parse(blob: &'a [u8]) -> Result<Self, CodecError> {
        let header = QUANT_MAGIC.len() + 16;
        if blob.len() < QUANT_MAGIC.len() || &blob[..QUANT_MAGIC.len()] != QUANT_MAGIC {
            return Err(CodecError::BadMagic);
        }
        if blob.len() < header {
            return Err(CodecError::Truncated {
                expected: header,
                actual: blob.len(),
            });
        }
        let word = |at: usize| {
            u32::from_le_bytes([blob[at], blob[at + 1], blob[at + 2], blob[at + 3]]) as usize
        };
        let rows = word(8);
        let dim = word(12);
        let scales_off = word(16);
        let data_off = word(20);
        if rows > 0 && dim == 0 {
            return Err(CodecError::BadShape);
        }
        let scales_end = rows
            .checked_mul(4)
            .and_then(|n| scales_off.checked_add(n))
            .ok_or(CodecError::BadShape)?;
        let data_end = rows
            .checked_mul(dim)
            .and_then(|n| data_off.checked_add(n))
            .ok_or(CodecError::BadShape)?;
        if scales_off < header || scales_end > data_off {
            return Err(CodecError::BadShape);
        }
        if data_end > blob.len() {
            return Err(CodecError::Truncated {
                expected: data_end,
                actual: blob.len(),
            });
        }
        Ok(Self {
            scales: &blob[scales_off..scales_end],
            data: &blob[data_off..data_end],
            rows,
            dim,
        })
    }
}

impl QuantRows for QuantView<'_> {
    fn rows(&self) -> usize {
        self.rows
    }

    fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn row(&self, i: usize) -> &[i8] {
        let bytes = &self.data[i * self.dim..(i + 1) * self.dim];
        // SAFETY: i8 and u8 have identical size and alignment, so
        // reinterpreting an in-bounds u8 slice as i8 with the same length
        // and lifetime is sound (a plain bit-preserving view).
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const i8, bytes.len()) }
    }

    #[inline]
    fn scale(&self, i: usize) -> f32 {
        let b = &self.scales[i * 4..i * 4 + 4];
        f32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }
}

/// An owning zero-copy handle over an encoded quantized blob: holds the
/// [`Bytes`] and serves rows/scales as views into them. This is the
/// serving-side shape — shards keep the encoded bytes (mmap-equivalent)
/// and score straight out of them.
#[derive(Debug, Clone)]
pub struct QuantBlob {
    bytes: Bytes,
    rows: usize,
    dim: usize,
    scales_off: usize,
    data_off: usize,
}

impl QuantBlob {
    /// Validates `bytes` (same checks as [`QuantView::parse`]) and wraps
    /// them without copying the payload.
    pub fn new(bytes: Bytes) -> Result<Self, CodecError> {
        let view = QuantView::parse(&bytes)?;
        let (rows, dim) = (view.rows, view.dim);
        // Recover section offsets from the parsed slices' positions.
        let base = bytes.as_ptr() as usize;
        let scales_off = view.scales.as_ptr() as usize - base;
        let data_off = view.data.as_ptr() as usize - base;
        Ok(Self {
            bytes,
            rows,
            dim,
            scales_off,
            data_off,
        })
    }

    /// Total encoded size in bytes (header + padding + payload).
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }

    /// A borrowed view of the same blob.
    pub fn view(&self) -> QuantView<'_> {
        QuantView {
            scales: &self.bytes[self.scales_off..self.scales_off + self.rows * 4],
            data: &self.bytes[self.data_off..self.data_off + self.rows * self.dim],
            rows: self.rows,
            dim: self.dim,
        }
    }
}

impl QuantRows for QuantBlob {
    fn rows(&self) -> usize {
        self.rows
    }

    fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn row(&self, i: usize) -> &[i8] {
        let bytes = &self.bytes[self.data_off + i * self.dim..self.data_off + (i + 1) * self.dim];
        // SAFETY: identical layout cast as QuantView::row — in-bounds u8
        // slice viewed as i8 with the same length and lifetime.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const i8, bytes.len()) }
    }

    #[inline]
    fn scale(&self, i: usize) -> f32 {
        let at = self.scales_off + i * 4;
        let b = &self.bytes[at..at + 4];
        f32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }
}

/// Decodes a quantized blob into an owned [`QuantMatrix`] (the
/// copy-everything path; serving prefers [`QuantBlob`]).
pub fn decode_quant(blob: &[u8]) -> Result<QuantMatrix, CodecError> {
    let view = QuantView::parse(blob)?;
    let (rows, dim) = (view.rows, view.dim);
    let mut data = Vec::with_capacity(rows * dim);
    let mut scales = Vec::with_capacity(rows);
    for i in 0..rows {
        data.extend_from_slice(view.row(i));
        scales.push(view.scale(i));
    }
    Ok(QuantMatrix::from_parts(rows, dim, data, scales))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisg_corpus::TokenId;

    #[test]
    fn roundtrip_preserves_everything() {
        let store = EmbeddingStore::new(7, 5, 99);
        let blob = encode(&store);
        let back = decode(&blob).unwrap();
        assert_eq!(back.n_tokens(), 7);
        assert_eq!(back.dim(), 5);
        for t in 0..7 {
            assert_eq!(back.input(TokenId(t)), store.input(TokenId(t)));
            assert_eq!(back.output(TokenId(t)), store.output(TokenId(t)));
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            decode(b"NOTSISG0\0\0\0\0\0\0\0\0"),
            Err(CodecError::BadMagic)
        ));
        assert!(matches!(decode(b""), Err(CodecError::BadMagic)));
    }

    #[test]
    fn truncation_detected() {
        let blob = encode(&EmbeddingStore::new(4, 4, 1));
        let cut = &blob[..blob.len() - 5];
        assert!(matches!(decode(cut), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = EmbeddingStore::new(0, 3, 1);
        let back = decode(&encode(&store)).unwrap();
        assert_eq!(back.n_tokens(), 0);
    }

    #[test]
    fn quant_roundtrip_preserves_everything() {
        let m = Matrix::uniform_init(11, 6, 17);
        let qm = QuantMatrix::from_matrix(&m);
        let blob = encode_quant(&qm);
        let back = decode_quant(&blob).unwrap();
        assert_eq!(back.rows(), 11);
        assert_eq!(back.dim(), 6);
        for i in 0..11 {
            assert_eq!(back.row(i), qm.row(i), "row {i}");
            assert_eq!(back.scale(i).to_bits(), qm.scale(i).to_bits(), "scale {i}");
        }
    }

    #[test]
    fn quant_view_and_blob_agree_with_owned_matrix() {
        let m = Matrix::uniform_init(9, 5, 23);
        let qm = QuantMatrix::from_matrix(&m);
        let bytes = encode_quant(&qm);
        let view = QuantView::parse(&bytes).unwrap();
        let blob = QuantBlob::new(bytes.clone()).unwrap();
        assert_eq!(blob.encoded_len(), bytes.len());
        for i in 0..9 {
            assert_eq!(view.row(i), qm.row(i));
            assert_eq!(blob.row(i), qm.row(i));
            assert_eq!(blob.view().row(i), qm.row(i));
            assert_eq!(view.scale(i).to_bits(), qm.scale(i).to_bits());
            assert_eq!(blob.scale(i).to_bits(), qm.scale(i).to_bits());
        }
    }

    #[test]
    fn quant_sections_are_aligned() {
        let qm = QuantMatrix::from_matrix(&Matrix::uniform_init(33, 7, 3));
        let blob = encode_quant(&qm);
        let word = |at: usize| {
            u32::from_le_bytes([blob[at], blob[at + 1], blob[at + 2], blob[at + 3]]) as usize
        };
        assert_eq!(&blob[..8], QUANT_MAGIC);
        assert_eq!(word(16) % QUANT_ALIGN, 0, "scales section unaligned");
        assert_eq!(word(20) % QUANT_ALIGN, 0, "weights section unaligned");
        assert!(word(16) + 33 * 4 <= word(20));
    }

    #[test]
    fn quant_bad_magic_and_truncation_rejected() {
        assert!(matches!(
            QuantView::parse(b"NOTQUANT"),
            Err(CodecError::BadMagic)
        ));
        let qm = QuantMatrix::from_matrix(&Matrix::uniform_init(4, 4, 1));
        let blob = encode_quant(&qm);
        let cut = &blob[..blob.len() - 3];
        assert!(matches!(
            QuantView::parse(cut),
            Err(CodecError::Truncated { .. })
        ));
        // A header whose sections overlap is rejected as a bad shape.
        let mut evil = blob.to_vec();
        evil[20..24].copy_from_slice(&(8u32).to_le_bytes()); // data_off inside header
        assert!(matches!(QuantView::parse(&evil), Err(CodecError::BadShape)));
    }

    #[test]
    fn quant_empty_matrix_roundtrips() {
        let qm = QuantMatrix::from_matrix(&Matrix::zeros(0, 3));
        let back = decode_quant(&encode_quant(&qm)).unwrap();
        assert_eq!(back.rows(), 0);
    }
}
