//! Compact binary (de)serialization of embedding stores.
//!
//! The production pipeline writes all embeddings daily for downstream
//! consumers; this codec is the equivalent artifact boundary. Layout (all
//! little-endian):
//!
//! ```text
//! magic "SISGEMB1" | u32 rows | u32 dim | rows*dim f32 input | rows*dim f32 output
//! ```

use crate::matrix::Matrix;
use crate::store::EmbeddingStore;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// File magic; bump the trailing digit on layout changes.
pub const MAGIC: &[u8; 8] = b"SISGEMB1";

/// Errors produced while decoding an embedding blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The blob does not start with [`MAGIC`].
    BadMagic,
    /// The blob is shorter than its header claims.
    Truncated {
        /// Bytes expected from the header.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// Header declares an implausible shape (zero dim with nonzero rows, or
    /// a size overflowing `usize`).
    BadShape,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a SISG embedding blob (bad magic)"),
            CodecError::Truncated { expected, actual } => {
                write!(f, "truncated blob: expected {expected} bytes, got {actual}")
            }
            CodecError::BadShape => write!(f, "implausible matrix shape in header"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes a store into a standalone blob.
///
/// ```
/// use sisg_embedding::{codec, EmbeddingStore};
///
/// let store = EmbeddingStore::new(10, 4, 42);
/// let blob = codec::encode(&store);
/// let back = codec::decode(&blob).unwrap();
/// assert_eq!(back.n_tokens(), 10);
/// assert_eq!(back.input_matrix().as_slice(), store.input_matrix().as_slice());
/// ```
pub fn encode(store: &EmbeddingStore) -> Bytes {
    let rows = store.n_tokens();
    let dim = store.dim();
    let mut buf = BytesMut::with_capacity(MAGIC.len() + 8 + rows * dim * 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(rows as u32);
    buf.put_u32_le(dim as u32);
    for v in store.input_matrix().as_slice() {
        buf.put_f32_le(*v);
    }
    for v in store.output_matrix().as_slice() {
        buf.put_f32_le(*v);
    }
    buf.freeze()
}

/// Deserializes a blob produced by [`encode`].
pub fn decode(mut blob: &[u8]) -> Result<EmbeddingStore, CodecError> {
    if blob.len() < MAGIC.len() + 8 || &blob[..MAGIC.len()] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    blob.advance(MAGIC.len());
    let rows = blob.get_u32_le() as usize;
    let dim = blob.get_u32_le() as usize;
    if rows > 0 && dim == 0 {
        return Err(CodecError::BadShape);
    }
    let floats = rows
        .checked_mul(dim)
        .and_then(|n| n.checked_mul(2))
        .ok_or(CodecError::BadShape)?;
    let expected = floats * 4;
    if blob.remaining() < expected {
        return Err(CodecError::Truncated {
            expected: MAGIC.len() + 8 + expected,
            actual: MAGIC.len() + 8 + blob.remaining(),
        });
    }
    let mut read_matrix = |rows: usize, dim: usize| {
        let mut data = Vec::with_capacity(rows * dim);
        for _ in 0..rows * dim {
            data.push(blob.get_f32_le());
        }
        Matrix::from_data(rows, dim, data)
    };
    let input = read_matrix(rows, dim);
    let output = read_matrix(rows, dim);
    Ok(EmbeddingStore::from_matrices(input, output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisg_corpus::TokenId;

    #[test]
    fn roundtrip_preserves_everything() {
        let store = EmbeddingStore::new(7, 5, 99);
        let blob = encode(&store);
        let back = decode(&blob).unwrap();
        assert_eq!(back.n_tokens(), 7);
        assert_eq!(back.dim(), 5);
        for t in 0..7 {
            assert_eq!(back.input(TokenId(t)), store.input(TokenId(t)));
            assert_eq!(back.output(TokenId(t)), store.output(TokenId(t)));
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            decode(b"NOTSISG0\0\0\0\0\0\0\0\0"),
            Err(CodecError::BadMagic)
        ));
        assert!(matches!(decode(b""), Err(CodecError::BadMagic)));
    }

    #[test]
    fn truncation_detected() {
        let blob = encode(&EmbeddingStore::new(4, 4, 1));
        let cut = &blob[..blob.len() - 5];
        assert!(matches!(decode(cut), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = EmbeddingStore::new(0, 3, 1);
        let back = decode(&encode(&store)).unwrap();
        assert_eq!(back.n_tokens(), 0);
    }
}
