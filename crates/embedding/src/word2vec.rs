//! word2vec text-format interchange.
//!
//! The paper's practicability pitch is that enriched sequences "may be fed
//! directly into any standard SGNS implementation, such as word2vec" — and
//! conversely, the vectors such a tool produces must be loadable back.
//! This module speaks the original `word2vec` text format:
//!
//! ```text
//! <vocab_size> <dim>
//! <token> <v1> <v2> … <vdim>
//! …
//! ```

use crate::matrix::Matrix;
use std::io::{self, BufRead, Write};

/// Writes rows of `matrix` in word2vec text format, naming row `i` with
/// `name(i)`.
pub fn write_text<W: Write>(
    matrix: &Matrix,
    mut name: impl FnMut(usize) -> String,
    out: &mut W,
) -> io::Result<()> {
    writeln!(out, "{} {}", matrix.rows(), matrix.dim())?;
    for i in 0..matrix.rows() {
        let token = name(i);
        debug_assert!(
            !token.contains(' ') && !token.contains('\n'),
            "token names must not contain separators"
        );
        write!(out, "{token}")?;
        for v in matrix.row(i) {
            write!(out, " {v}")?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Errors raised while parsing a word2vec text file.
#[derive(Debug, PartialEq, Eq)]
pub enum W2vParseError {
    /// Missing or malformed `<vocab_size> <dim>` header.
    BadHeader,
    /// A row had the wrong number of columns or a non-numeric value.
    BadRow {
        /// 1-based line number of the offending row.
        line: usize,
    },
    /// Fewer rows than the header declared.
    Truncated {
        /// Rows declared by the header.
        expected: usize,
        /// Rows actually parsed.
        actual: usize,
    },
}

impl std::fmt::Display for W2vParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            W2vParseError::BadHeader => write!(f, "malformed word2vec header"),
            W2vParseError::BadRow { line } => write!(f, "malformed row at line {line}"),
            W2vParseError::Truncated { expected, actual } => {
                write!(f, "expected {expected} rows, found {actual}")
            }
        }
    }
}

impl std::error::Error for W2vParseError {}

/// Reads a word2vec text file into `(names, matrix)`.
pub fn read_text<R: BufRead>(input: R) -> Result<(Vec<String>, Matrix), W2vParseError> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .and_then(|l| l.ok())
        .ok_or(W2vParseError::BadHeader)?;
    let mut parts = header.split_whitespace();
    let rows: usize = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or(W2vParseError::BadHeader)?;
    let dim: usize = parts
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or(W2vParseError::BadHeader)?;
    if dim == 0 && rows > 0 {
        return Err(W2vParseError::BadHeader);
    }

    let mut names = Vec::with_capacity(rows);
    let mut data = Vec::with_capacity(rows * dim);
    for (i, line) in lines.enumerate() {
        if names.len() == rows {
            break;
        }
        let line = line.map_err(|_| W2vParseError::BadRow { line: i + 2 })?;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let token = parts.next().ok_or(W2vParseError::BadRow { line: i + 2 })?;
        let before = data.len();
        for p in parts {
            let v: f32 = p
                .parse()
                .map_err(|_| W2vParseError::BadRow { line: i + 2 })?;
            data.push(v);
        }
        if data.len() - before != dim {
            return Err(W2vParseError::BadRow { line: i + 2 });
        }
        names.push(token.to_owned());
    }
    if names.len() != rows {
        return Err(W2vParseError::Truncated {
            expected: rows,
            actual: names.len(),
        });
    }
    Ok((names, Matrix::from_data(rows, dim, data)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = Matrix::uniform_init(5, 3, 7);
        let mut buf = Vec::new();
        write_text(&m, |i| format!("tok_{i}"), &mut buf).unwrap();
        let (names, back) = read_text(&buf[..]).unwrap();
        assert_eq!(names, vec!["tok_0", "tok_1", "tok_2", "tok_3", "tok_4"]);
        assert_eq!(back.rows(), 5);
        assert_eq!(back.dim(), 3);
        for i in 0..5 {
            for (a, b) in m.row(i).iter().zip(back.row(i)) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(
            read_text(&b"oops\n"[..]).unwrap_err(),
            W2vParseError::BadHeader
        );
        assert_eq!(read_text(&b""[..]).unwrap_err(), W2vParseError::BadHeader);
    }

    #[test]
    fn wrong_column_count_rejected() {
        let text = b"1 3\ntok 1.0 2.0\n";
        assert_eq!(
            read_text(&text[..]).unwrap_err(),
            W2vParseError::BadRow { line: 2 }
        );
    }

    #[test]
    fn truncated_file_rejected() {
        let text = b"2 2\ntok 1.0 2.0\n";
        assert_eq!(
            read_text(&text[..]).unwrap_err(),
            W2vParseError::Truncated {
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let m = Matrix::zeros(0, 4);
        let mut buf = Vec::new();
        write_text(&m, |i| format!("t{i}"), &mut buf).unwrap();
        let (names, back) = read_text(&buf[..]).unwrap();
        assert!(names.is_empty());
        assert_eq!(back.rows(), 0);
    }
}
