//! The batched, unrolled kernel layer behind every SGD inner loop and
//! serving-side scorer (DESIGN.md §8).
//!
//! Two kernel families live here, split by *numeric contract*:
//!
//! - **Order-preserving kernels** (`dot_ordered`, `dot_ordered_x4`,
//!   `fused_step`, `axpy`, `add_assign`, `scale`, `accumulate_delta`):
//!   every f32 operation on a given element happens in exactly the order
//!   the naive scalar loop performs it, so results are *bit-identical* to
//!   the reference implementation. The training paths use only these —
//!   single-threaded training output is reproducible across kernel-layer
//!   versions (enforced by the golden checksum test in `crates/sgns`).
//!   `dot_ordered_x4` gets its speed without reordering: it interleaves
//!   four *independent* serial accumulation chains, one per row, which
//!   hides the ~4-cycle FP-add latency that makes a single serial dot
//!   throughput-starved.
//! - **Reduction-reordering kernels** (`dot`, with [`dot_scalar_ref`] as
//!   its semantic definition): 8-wide unrolled with 4 independent
//!   accumulators (`acc[i % 4] += x[i] * y[i]`, combined as
//!   `(a0 + a1) + (a2 + a3)`). Up to ~4× faster than the serial chain, but
//!   the reordered reduction shifts low-order bits, so these serve the
//!   retrieval / evaluation / serving scorers where bit-reproducibility
//!   across versions is not contractual (results are still deterministic
//!   within a build).
//!
//! Elementwise kernels (`axpy` and friends) have no reduction, so loop
//! unrolling and auto-vectorization cannot change their results: each
//! element's value is computed by the same ops in the same order
//! regardless of how many lanes execute at once. They are safe in both
//! families.
//!
//! Atomic (Hogwild) counterparts of these kernels live on
//! [`crate::matrix::RowPtr`], which owns the `AtomicU32` cells; the
//! soundness rules there (per-element relaxed atomics, no SIMD over
//! atomic memory) are why the two implementations are separate.

/// Strict left-to-right dot product — the order-preserving reference used
/// by the training paths.
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn dot_ordered(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    let mut acc = 0.0f32;
    for (&a, &b) in x.iter().zip(y) {
        acc += a * b;
    }
    acc
}

/// Four order-preserving dot products against a shared right-hand side,
/// with the four serial accumulation chains interleaved for instruction-
/// level parallelism. Each result is bit-identical to
/// `dot_ordered(rows[i], y)`; only the *scheduling* changes.
///
/// # Panics
/// Panics when any row's length differs from `y.len()`.
#[inline]
pub fn dot_ordered_x4(rows: [&[f32]; 4], y: &[f32]) -> [f32; 4] {
    let n = y.len();
    for r in rows {
        assert_eq!(r.len(), n, "length mismatch");
    }
    let [r0, r1, r2, r3] = rows;
    let mut a0 = 0.0f32;
    let mut a1 = 0.0f32;
    let mut a2 = 0.0f32;
    let mut a3 = 0.0f32;
    for d in 0..n {
        let v = y[d];
        a0 += r0[d] * v;
        a1 += r1[d] * v;
        a2 += r2[d] * v;
        a3 += r3[d] * v;
    }
    [a0, a1, a2, a3]
}

/// Scalar definition of the unrolled [`dot`] reduction: lane `i % 4`
/// accumulates element `i`, lanes combine as `(a0 + a1) + (a2 + a3)`.
/// The proptests in `tests/kernel_identity.rs` hold [`dot`] to this within
/// 0 ULP for every length.
#[inline]
pub fn dot_scalar_ref(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    let mut acc = [0.0f32; 4];
    for (i, (&a, &b)) in x.iter().zip(y).enumerate() {
        acc[i % 4] += a * b;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Dot product, 8-wide unrolled with 4 independent accumulators — the
/// throughput kernel behind [`crate::math::dot`] and the serving scorers.
/// Reduction order is [`dot_scalar_ref`]'s lane order, *not* the serial
/// order; training paths use [`dot_ordered`] instead.
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    let mut a0 = 0.0f32;
    let mut a1 = 0.0f32;
    let mut a2 = 0.0f32;
    let mut a3 = 0.0f32;
    let mut xc = x.chunks_exact(8);
    let mut yc = y.chunks_exact(8);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        a0 += xs[0] * ys[0];
        a1 += xs[1] * ys[1];
        a2 += xs[2] * ys[2];
        a3 += xs[3] * ys[3];
        a0 += xs[4] * ys[4];
        a1 += xs[5] * ys[5];
        a2 += xs[6] * ys[6];
        a3 += xs[7] * ys[7];
    }
    // Remainder elements continue the `i % 4` lane pattern: a full chunk
    // is 8 elements, so the first remainder element is lane 0 again.
    let mut acc = [a0, a1, a2, a3];
    for (i, (&a, &b)) in xc.remainder().iter().zip(yc.remainder()).enumerate() {
        acc[i % 4] += a * b;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// `y += a · x`. Elementwise, so unrolling cannot change results; the
/// plain loop auto-vectorizes.
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "length mismatch");
    for (slot, &v) in y.iter_mut().zip(x) {
        *slot += a * v;
    }
}

/// `dst += src` — bit-identical to `axpy(1.0, src, dst)` since
/// `1.0 * v == v` exactly.
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    assert_eq!(src.len(), dst.len(), "length mismatch");
    for (slot, &v) in dst.iter_mut().zip(src) {
        *slot += v;
    }
}

/// Scales `x` in place by `a`.
#[inline]
pub fn scale(x: &mut [f32], a: f32) {
    for v in x {
        *v *= a;
    }
}

/// `acc += v − b`, elementwise — the DeltaSum reconciliation step of the
/// hot-set replica sync.
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn accumulate_delta(acc: &mut [f32], v: &[f32], b: &[f32]) {
    assert_eq!(acc.len(), v.len(), "length mismatch");
    assert_eq!(acc.len(), b.len(), "length mismatch");
    for ((slot, &val), &base) in acc.iter_mut().zip(v).zip(b) {
        *slot += val - base;
    }
}

/// The fused SGD update of one sample step, non-atomic exact path:
/// for every element, `grad[d] += g · vp[d]` (pre-update value) and then
/// `vp[d] = vp[d] + g · v[d]` — one pass over the output row instead of
/// the separate `accumulate_scaled` + `axpy` passes, preserving exactly
/// their per-element op order.
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn fused_step(g: f32, v: &[f32], vp: &mut [f32], grad: &mut [f32]) {
    assert_eq!(v.len(), vp.len(), "length mismatch");
    assert_eq!(v.len(), grad.len(), "length mismatch");
    for ((slot, out), &x) in grad.iter_mut().zip(vp.iter_mut()).zip(v) {
        let old = *out;
        *slot += g * old;
        *out = old + g * x;
    }
}

/// Serial-sum reference for the quantized kernels. Integer addition is
/// associative, so unlike the f32 pair ([`dot`] vs [`dot_scalar_ref`])
/// any blocking of [`dot_q8_i32`] must return *exactly* this sum — the
/// blocked kernel is held to it at 0 ULP (it is the same integer) for
/// every length by the remainder-sweep test below.
#[inline]
pub fn dot_q8_scalar_ref(x: &[i8], y: &[i8]) -> i32 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    x.iter().zip(y).map(|(&a, &b)| a as i32 * b as i32).sum()
}

/// Raw quantized dot product: i32 accumulation over i8 weights in
/// 32-element blocks, each block a plain widening multiply-add loop that
/// LLVM's loop vectorizer turns into SIMD code. The f32 [`dot`]'s manual
/// 4-lane unroll is deliberately *not* mirrored here: it defeats integer
/// vectorization and measures ~3× slower at baseline x86-64 than this
/// shape. Unlike the f32 kernels the blocking is invisible in the result
/// — integer addition is associative, so every shape returns exactly the
/// serial sum of [`dot_q8_scalar_ref`] (i8·i8 products and their sums
/// never overflow i32 below 2³¹/127² ≈ 133k elements, far past any
/// embedding dim here).
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn dot_q8_i32(x: &[i8], y: &[i8]) -> i32 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    let mut acc = 0i32;
    let mut xc = x.chunks_exact(32);
    let mut yc = y.chunks_exact(32);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        let mut block = 0i32;
        for d in 0..32 {
            block += xs[d] as i32 * ys[d] as i32;
        }
        acc += block;
    }
    for (&a, &b) in xc.remainder().iter().zip(yc.remainder()) {
        acc += a as i32 * b as i32;
    }
    acc
}

/// Quantized dot product rescaled to f32 score space: accumulates in i32
/// via [`dot_q8_i32`] and multiplies by the *combined* scale
/// (`row_scale · query_scale`) exactly once. The serving-side quantized
/// scorer.
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn dot_q8(x: &[i8], y: &[i8], combined_scale: f32) -> f32 {
    dot_q8_i32(x, y) as f32 * combined_scale
}

/// Four quantized dot products against a shared right-hand side, i32
/// accumulation chains interleaved for instruction-level parallelism —
/// the quantized sibling of [`dot_ordered_x4`]. Each result is exactly
/// `dot_q8(rows[i], y, scales[i])` (integer accumulation makes the
/// interleaving invisible).
///
/// # Panics
/// Panics when any row's length differs from `y.len()`.
#[inline]
pub fn dot_q8_x4(rows: [&[i8]; 4], scales: [f32; 4], y: &[i8]) -> [f32; 4] {
    let n = y.len();
    for r in rows {
        assert_eq!(r.len(), n, "length mismatch");
    }
    let [r0, r1, r2, r3] = rows;
    let mut a0 = 0i32;
    let mut a1 = 0i32;
    let mut a2 = 0i32;
    let mut a3 = 0i32;
    for d in 0..n {
        let v = y[d] as i32;
        a0 += r0[d] as i32 * v;
        a1 += r1[d] as i32 * v;
        a2 += r2[d] as i32 * v;
        a3 += r3[d] as i32 * v;
    }
    [
        a0 as f32 * scales[0],
        a1 as f32 * scales[1],
        a2 as f32 * scales[2],
        a3 as f32 * scales[3],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, salt: f32) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.37 + salt).sin()).collect()
    }

    #[test]
    fn dot_matches_scalar_ref_exactly() {
        for n in 0..=33 {
            let x = seq(n, 0.1);
            let y = seq(n, 1.7);
            assert_eq!(dot(&x, &y).to_bits(), dot_scalar_ref(&x, &y).to_bits());
        }
    }

    #[test]
    fn dot_ordered_is_the_naive_loop() {
        let x = seq(19, 0.3);
        let y = seq(19, 2.2);
        let mut acc = 0.0f32;
        for i in 0..x.len() {
            acc += x[i] * y[i];
        }
        assert_eq!(dot_ordered(&x, &y).to_bits(), acc.to_bits());
    }

    #[test]
    fn dot_ordered_x4_matches_four_serial_dots() {
        for n in [0usize, 1, 7, 16, 31] {
            let rows: Vec<Vec<f32>> = (0..4).map(|r| seq(n, r as f32)).collect();
            let y = seq(n, 9.9);
            let got = dot_ordered_x4([&rows[0], &rows[1], &rows[2], &rows[3]], &y);
            for r in 0..4 {
                assert_eq!(got[r].to_bits(), dot_ordered(&rows[r], &y).to_bits());
            }
        }
    }

    #[test]
    fn dot_variants_agree_approximately() {
        let x = seq(128, 0.5);
        let y = seq(128, 3.1);
        assert!((dot(&x, &y) - dot_ordered(&x, &y)).abs() < 1e-4);
    }

    #[test]
    fn fused_step_equals_two_pass_reference() {
        let n = 21;
        let v = seq(n, 0.2);
        let g = 0.013f32;
        let mut vp = seq(n, 1.1);
        let mut grad = seq(n, 2.5);
        let mut vp_ref = vp.clone();
        let mut grad_ref = grad.clone();
        // Reference: grad += g·vp (pre-update), then vp += g·v.
        for d in 0..n {
            grad_ref[d] += g * vp_ref[d];
        }
        for d in 0..n {
            vp_ref[d] += g * v[d];
        }
        fused_step(g, &v, &mut vp, &mut grad);
        for d in 0..n {
            assert_eq!(vp[d].to_bits(), vp_ref[d].to_bits());
            assert_eq!(grad[d].to_bits(), grad_ref[d].to_bits());
        }
    }

    #[test]
    fn elementwise_kernels_are_exact() {
        let mut y = vec![1.0f32, 2.0, 3.0];
        axpy(2.0, &[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, [3.0, 4.0, 5.0]);
        add_assign(&mut y, &[1.0, 0.0, -1.0]);
        assert_eq!(y, [4.0, 4.0, 4.0]);
        scale(&mut y, 0.5);
        assert_eq!(y, [2.0, 2.0, 2.0]);
        let mut acc = vec![1.0f32, 1.0];
        accumulate_delta(&mut acc, &[5.0, 7.0], &[4.0, 4.0]);
        assert_eq!(acc, [2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    fn qseq(n: usize, salt: i32) -> Vec<i8> {
        (0..n)
            .map(|i| (((i as i32 * 37 + salt * 13) % 255) - 127) as i8)
            .collect()
    }

    #[test]
    fn dot_q8_matches_scalar_ref_exactly_across_remainders() {
        // The ISSUE-level 0-ULP sweep: every length through two full
        // 32-element blocks plus every partial tail agrees bit-for-bit
        // with the i32 scalar reference, and with the plain serial sum.
        for n in 0..=70usize {
            let x = qseq(n, 1);
            let y = qseq(n, 7);
            let unrolled = dot_q8_i32(&x, &y);
            let reference = dot_q8_scalar_ref(&x, &y);
            assert_eq!(unrolled, reference, "n={n}");
            let serial: i32 = x.iter().zip(&y).map(|(&a, &b)| a as i32 * b as i32).sum();
            assert_eq!(unrolled, serial, "n={n}");
            // The rescaled form is the same integer times the scale: 0 ULP.
            let s = 0.0371f32;
            assert_eq!(
                dot_q8(&x, &y, s).to_bits(),
                (reference as f32 * s).to_bits(),
                "n={n}"
            );
        }
    }

    #[test]
    fn dot_q8_saturated_rows_do_not_overflow() {
        // 127·127·4096 = 66 060 288 « i32::MAX: the worst case at any
        // realistic dim stays exact.
        let x = vec![127i8; 4096];
        let y = vec![-127i8; 4096];
        assert_eq!(dot_q8_i32(&x, &y), -127 * 127 * 4096);
    }

    #[test]
    fn dot_q8_x4_matches_four_single_dots() {
        for n in [0usize, 1, 7, 16, 31] {
            let rows: Vec<Vec<i8>> = (0..4).map(|r| qseq(n, r)).collect();
            let y = qseq(n, 9);
            let scales = [0.1f32, 0.2, 0.3, 0.4];
            let got = dot_q8_x4([&rows[0], &rows[1], &rows[2], &rows[3]], scales, &y);
            for r in 0..4 {
                assert_eq!(
                    got[r].to_bits(),
                    dot_q8(&rows[r], &y, scales[r]).to_bits(),
                    "n={n} r={r}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_q8_length_mismatch_panics() {
        let _ = dot_q8_i32(&[1i8], &[1i8, 2]);
    }
}
