//! Concurrency soundness tests for the shared-row Hogwild API.
//!
//! The [`sisg_embedding::matrix::RowPtr`] contract is that every element
//! access is a single relaxed 32-bit atomic load/store: concurrent writers
//! may *lose* updates (the Hogwild approximation) but can never tear a
//! word or corrupt memory. These tests drive that contract hard from many
//! threads and check the observable half of it.

use proptest::prelude::{prop_assert, prop_assert_eq, proptest};
use sisg_embedding::Matrix;

/// Bit pattern thread `t` stamps everywhere. Patterns differ in every byte
/// so a torn write (any mix of two patterns within one word) would produce
/// a value no thread ever wrote.
fn pattern(t: usize) -> f32 {
    let b = (t as u32 + 1) * 0x0101_0101;
    f32::from_bits(b)
}

#[test]
fn concurrent_writes_never_tear() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 500;
    let m = Matrix::zeros(4, 64);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let m = &m;
            scope.spawn(move || {
                let p = pattern(t);
                for round in 0..ROUNDS {
                    // Every thread hammers every row; vary the cell order
                    // per thread so writes genuinely interleave.
                    for r in 0..m.rows() {
                        let row = m.row_ptr(r);
                        for i in 0..row.len() {
                            let d = (i * (t + 1) + round) % row.len();
                            row.set_elem(d, p);
                        }
                    }
                }
            });
        }
    });

    // Every surviving bit pattern must be exactly one some thread wrote —
    // a torn word would mix bytes of two patterns and match neither.
    let allowed: Vec<u32> = (0..THREADS).map(|t| pattern(t).to_bits()).collect();
    for r in 0..m.rows() {
        for &v in m.row(r) {
            assert!(
                allowed.contains(&v.to_bits()),
                "cell holds {:#010x}, which no thread wrote",
                v.to_bits()
            );
        }
    }
}

#[test]
fn concurrent_adds_accumulate_without_corruption() {
    // `add` is load+store (not fetch_add): increments may be lost under
    // contention but the result must stay a sane sum of step-sized
    // increments — never garbage from a torn word.
    const THREADS: usize = 4;
    const ADDS: usize = 1_000;
    let m = Matrix::zeros(1, 8);

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let m = &m;
            scope.spawn(move || {
                let row = m.row_ptr(0);
                for _ in 0..ADDS {
                    for d in 0..row.len() {
                        row.add_elem(d, 1.0);
                    }
                }
            });
        }
    });

    let max = (THREADS * ADDS) as f32;
    for &v in m.row(0) {
        assert!(v >= 1.0 && v <= max, "cell {v} outside [1, {max}]");
        assert_eq!(v.fract(), 0.0, "cell {v} is not a whole number of adds");
    }
}

proptest! {
    #[test]
    fn try_row_ptr_rejects_out_of_range(
        rows in 1usize..32,
        dim in 1usize..16,
        probe in 0usize..64,
    ) {
        let m = Matrix::zeros(rows, dim);
        match m.try_row_ptr(probe) {
            Some(row) => {
                prop_assert!(probe < rows, "row {probe} of {rows} accepted");
                prop_assert_eq!(row.len(), dim);
            }
            None => prop_assert!(probe >= rows, "row {probe} of {rows} rejected"),
        }
    }
}
