//! Bit-identity regression suite for the DESIGN.md §8 kernel layer.
//!
//! Every unrolled or batched kernel must agree with its scalar reference
//! to the last bit (`to_bits` equality, i.e. 0 ULP): the single-threaded
//! trainer's golden-checksum test depends on it, and a silent reduction
//! reorder in a "faster" kernel would change training trajectories.
//!
//! Deterministic loops pin every remainder length `0..=17` (all residues
//! of the 8-wide and 4-wide unroll factors, twice over); proptests then
//! sweep longer lengths and arbitrary values.

use proptest::collection::vec;
use proptest::prelude::{prop_assert_eq, proptest};
use sisg_embedding::{dot_slice_x4, kernels, Matrix};

/// Deterministic, irregular test values — sums are inexact so any
/// reduction reorder flips low-order bits.
fn values(len: usize, salt: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt) >> 8;
            (h as f32 / 2.0_f32.powi(24)) * 6.0 - 3.0
        })
        .collect()
}

fn dot_serial(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (a, b) in x.iter().zip(y) {
        acc += a * b;
    }
    acc
}

#[test]
fn unrolled_dot_matches_lane_reference_for_all_remainders() {
    for len in 0..=17 {
        let x = values(len, 1);
        let y = values(len, 2);
        assert_eq!(
            kernels::dot(&x, &y).to_bits(),
            kernels::dot_scalar_ref(&x, &y).to_bits(),
            "len {len}"
        );
    }
}

#[test]
fn ordered_dot_is_the_serial_fold_for_all_remainders() {
    for len in 0..=17 {
        let x = values(len, 3);
        let y = values(len, 4);
        assert_eq!(
            kernels::dot_ordered(&x, &y).to_bits(),
            dot_serial(&x, &y).to_bits(),
            "len {len}"
        );
    }
}

#[test]
fn row_ptr_dot_slice_is_the_serial_fold_for_all_remainders() {
    for len in 1..=17 {
        let m = Matrix::from_data(1, len, values(len, 5));
        let y = values(len, 6);
        assert_eq!(
            m.row_ptr(0).dot_slice(&y).to_bits(),
            dot_serial(m.row(0), &y).to_bits(),
            "len {len}"
        );
    }
}

#[test]
fn unrolled_axpy_slice_matches_scalar_reference_for_all_remainders() {
    for len in 1..=17 {
        let m = Matrix::from_data(1, len, values(len, 7));
        let x = values(len, 8);
        let mut expect: Vec<f32> = m.row(0).to_vec();
        for (e, &xi) in expect.iter_mut().zip(&x) {
            *e += 0.37 * xi;
        }
        m.row_ptr(0).axpy_slice(0.37, &x);
        let got: Vec<u32> = m.row(0).iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = expect.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "len {len}");
    }
}

#[test]
fn accumulate_scaled_matches_scalar_reference_for_all_remainders() {
    for len in 1..=17 {
        let m = Matrix::from_data(1, len, values(len, 9));
        let mut acc = values(len, 10);
        let mut expect = acc.clone();
        for (e, &v) in expect.iter_mut().zip(m.row(0)) {
            *e += -0.81 * v;
        }
        m.row_ptr(0).accumulate_scaled(-0.81, &mut acc);
        let got: Vec<u32> = acc.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = expect.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "len {len}");
    }
}

proptest! {
    #[test]
    fn unrolled_dot_matches_lane_reference(
        xs in vec(-3.0f32..3.0, 0..64),
        ys in vec(-3.0f32..3.0, 0..64),
    ) {
        let n = xs.len().min(ys.len());
        let (x, y) = (&xs[..n], &ys[..n]);
        prop_assert_eq!(kernels::dot(x, y).to_bits(), kernels::dot_scalar_ref(x, y).to_bits());
    }

    #[test]
    fn ordered_dot_matches_serial_fold(
        xs in vec(-3.0f32..3.0, 0..64),
        ys in vec(-3.0f32..3.0, 0..64),
    ) {
        let n = xs.len().min(ys.len());
        let (x, y) = (&xs[..n], &ys[..n]);
        prop_assert_eq!(kernels::dot_ordered(x, y).to_bits(), dot_serial(x, y).to_bits());
    }

    #[test]
    fn interleaved_x4_dots_match_four_serial_dots(
        data in vec(-3.0f32..3.0, 4..256),
        y in vec(-3.0f32..3.0, 1..64),
    ) {
        let dim = (data.len() / 4).min(y.len());
        let rows = [
            &data[0..dim],
            &data[dim..2 * dim],
            &data[2 * dim..3 * dim],
            &data[3 * dim..4 * dim],
        ];
        let got = kernels::dot_ordered_x4(rows, &y[..dim]);
        for j in 0..4 {
            prop_assert_eq!(got[j].to_bits(), dot_serial(rows[j], &y[..dim]).to_bits());
        }
    }

    #[test]
    fn row_ptr_x4_dots_match_four_dot_slices(
        data in vec(-3.0f32..3.0, 4..256),
        y in vec(-3.0f32..3.0, 1..64),
    ) {
        let dim = (data.len() / 4).min(y.len()).max(1);
        let m = Matrix::from_data(4, dim, data[..4 * dim].to_vec());
        let got = dot_slice_x4(
            [m.row_ptr(0), m.row_ptr(1), m.row_ptr(2), m.row_ptr(3)],
            &y[..dim],
        );
        for (j, &g) in got.iter().enumerate() {
            prop_assert_eq!(g.to_bits(), m.row_ptr(j).dot_slice(&y[..dim]).to_bits());
        }
    }

    #[test]
    fn fused_step_matches_two_pass_reference(
        out in vec(-3.0f32..3.0, 1..64),
        x in vec(-3.0f32..3.0, 1..64),
        g in -0.5f32..0.5,
    ) {
        let n = out.len().min(x.len());
        // Reference: accumulate_scaled then axpy over the same initial row.
        let mut expect_out = out[..n].to_vec();
        let mut expect_grad = vec![0.0f32; n];
        for ((eg, eo), &xi) in expect_grad.iter_mut().zip(expect_out.iter_mut()).zip(&x[..n]) {
            *eg += g * *eo;
            *eo += g * xi;
        }
        let mut got_out = out[..n].to_vec();
        let mut got_grad = vec![0.0f32; n];
        kernels::fused_step(g, &x[..n], &mut got_out, &mut got_grad);
        let gb: Vec<u32> = got_out.iter().chain(&got_grad).map(|v| v.to_bits()).collect();
        let wb: Vec<u32> = expect_out.iter().chain(&expect_grad).map(|v| v.to_bits()).collect();
        prop_assert_eq!(gb, wb);
    }

    #[test]
    fn fused_grad_step_matches_accumulate_then_axpy(
        row in vec(-3.0f32..3.0, 1..64),
        x in vec(-3.0f32..3.0, 1..64),
        g in -0.5f32..0.5,
    ) {
        let n = row.len().min(x.len());
        let fused = Matrix::from_data(1, n, row[..n].to_vec());
        let two_pass = Matrix::from_data(1, n, row[..n].to_vec());
        let mut fused_grad = vec![0.0f32; n];
        let mut ref_grad = vec![0.0f32; n];
        fused.row_ptr(0).fused_grad_step(g, &x[..n], &mut fused_grad);
        two_pass.row_ptr(0).accumulate_scaled(g, &mut ref_grad);
        two_pass.row_ptr(0).axpy_slice(g, &x[..n]);
        let gb: Vec<u32> = fused.row(0).iter().chain(&fused_grad).map(|v| v.to_bits()).collect();
        let wb: Vec<u32> = two_pass.row(0).iter().chain(&ref_grad).map(|v| v.to_bits()).collect();
        prop_assert_eq!(gb, wb);
    }

    #[test]
    fn elementwise_kernels_match_scalar_references(
        a in vec(-3.0f32..3.0, 0..64),
        b in vec(-3.0f32..3.0, 0..64),
        c in vec(-3.0f32..3.0, 0..64),
        s in -2.0f32..2.0,
    ) {
        let n = a.len().min(b.len()).min(c.len());

        let mut got = a[..n].to_vec();
        kernels::axpy(s, &b[..n], &mut got);
        let mut want = a[..n].to_vec();
        for (w, &bi) in want.iter_mut().zip(&b[..n]) { *w += s * bi; }
        prop_assert_eq!(bits(&got), bits(&want));

        let mut got = a[..n].to_vec();
        kernels::add_assign(&mut got, &b[..n]);
        let mut want = a[..n].to_vec();
        for (w, &bi) in want.iter_mut().zip(&b[..n]) { *w += bi; }
        prop_assert_eq!(bits(&got), bits(&want));

        let mut got = a[..n].to_vec();
        kernels::scale(&mut got, s);
        let mut want = a[..n].to_vec();
        for w in want.iter_mut() { *w *= s; }
        prop_assert_eq!(bits(&got), bits(&want));

        let mut got = a[..n].to_vec();
        kernels::accumulate_delta(&mut got, &b[..n], &c[..n]);
        let mut want = a[..n].to_vec();
        for ((w, &bi), &ci) in want.iter_mut().zip(&b[..n]).zip(&c[..n]) { *w += bi - ci; }
        prop_assert_eq!(bits(&got), bits(&want));
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}
