//! Generated fault schedules: the cluster must terminate cleanly under
//! *any* combination of drops, duplicates, delays, stalls, and crashes —
//! the no-deadlock half of the tentpole — and moderate message loss must
//! not meaningfully hurt model quality.

use proptest::prelude::*;
use sisg_corpus::{CorpusConfig, EnrichOptions, EnrichedCorpus, GeneratedCorpus};
use sisg_distributed::runtime::PartitionStrategy;
use sisg_distributed::{CrashSpec, DistConfig, FaultPlan, StallSpec};
use sisg_simtest::{hit_rate_at_10, simulate, SimConfig};

fn small_dist(workers: usize) -> DistConfig {
    DistConfig {
        workers,
        dim: 4,
        window: 2,
        negatives: 2,
        epochs: 1,
        hot_set_size: 0,
        sync_interval: 1_000,
        strategy: PartitionStrategy::Hash,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn no_schedule_deadlocks_the_cluster(
        seed in 0u64..u64::MAX,
        workers in 2usize..5,
        drop_centi in 0u32..26,
        dup_centi in 0u32..16,
        delay_centi in 0u32..16,
        max_delay in 1u64..12,
        chaos in 0u32..4,
    ) {
        let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
        let enriched = EnrichedCorpus::build(&corpus, EnrichOptions::NONE);

        let mut plan = FaultPlan::message_faults(
            seed,
            drop_centi as f64 / 100.0,
            dup_centi as f64 / 100.0,
            delay_centi as f64 / 100.0,
        );
        plan.max_delay_ticks = max_delay;
        // `chaos` folds stalls and crashes into a quarter of the schedules
        // each, so message faults, stalls, and crashes all get composed.
        if chaos == 1 || chaos == 3 {
            plan.stalls.push(StallSpec {
                worker: 0,
                after_pairs: 32,
                ticks: 64,
            });
        }
        if chaos == 2 || chaos == 3 {
            plan.crashes.push(CrashSpec {
                worker: workers - 1,
                after_pairs: 48,
                down_ticks: 96,
            });
        }

        let sim = SimConfig::new(small_dist(workers), plan);
        let out = simulate(&enriched, &corpus.sessions, &corpus.catalog, &sim);
        prop_assert!(
            out.completed,
            "schedule deadlocked: seed {seed:#x}, drop {drop_centi}%, dup {dup_centi}%, \
             delay {delay_centi}%, chaos {chaos} ({} events, {} ticks)",
            out.events,
            out.ticks
        );
        // Every scheduled pair is accounted for: trained or explicitly
        // abandoned after max_attempts, never silently lost.
        prop_assert!(out.report.pairs > 0);
    }
}

/// Training under a 10% drop rate (plus retries, dedup, and stale-response
/// discards) must land within tolerance of the fault-free model — the
/// protocol degrades capacity, not correctness.
#[test]
fn ten_percent_drop_rate_preserves_hit_rate() {
    let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
    let enriched = EnrichedCorpus::build(&corpus, EnrichOptions::NONE);
    let dist = DistConfig {
        workers: 3,
        dim: 16,
        window: 3,
        negatives: 3,
        epochs: 2,
        hot_set_size: 0,
        sync_interval: 1_000,
        strategy: PartitionStrategy::Hash,
        ..Default::default()
    };
    let n_items = corpus.config.n_items;

    let clean = simulate(
        &enriched,
        &corpus.sessions,
        &corpus.catalog,
        &SimConfig::new(dist.clone(), FaultPlan::none()),
    );
    let lossy = simulate(
        &enriched,
        &corpus.sessions,
        &corpus.catalog,
        &SimConfig::new(dist, FaultPlan::message_faults(0xD20D, 0.10, 0.0, 0.0)),
    );
    assert!(clean.completed && lossy.completed);
    assert!(lossy.report.faults_injected > 0);
    assert!(
        lossy.report.retries > 0,
        "drops must trigger the retry path"
    );

    let hr_clean = hit_rate_at_10(&clean.store, &corpus.sessions, n_items);
    let hr_lossy = hit_rate_at_10(&lossy.store, &corpus.sessions, n_items);
    println!("HR@10 clean={hr_clean:.4} lossy={hr_lossy:.4}");
    assert!(hr_clean > 0.0, "baseline model learned nothing");
    let tolerance = (hr_clean * 0.10).max(0.05);
    assert!(
        (hr_clean - hr_lossy).abs() <= tolerance,
        "drop-rate 10% moved HR@10 beyond tolerance: clean {hr_clean:.4} vs lossy {hr_lossy:.4}"
    );
}
