//! Engine parity (satellite d): the threaded channels driver, the
//! shared-memory Hogwild runtime, and the simulated cluster all scan the
//! same seeded pair streams, so with the hot set disabled their
//! cross-worker pair accounting must agree *exactly*, and the models they
//! produce must score equivalently.
//!
//! Float bits are not compared across engines: the shared-memory runtime
//! races its unsynchronized adds, and the message-passing engines apply
//! remote gradients at delivery time — only the *accounting* is required
//! to be identical.

use sisg_corpus::{CorpusConfig, EnrichOptions, EnrichedCorpus, GeneratedCorpus};
use sisg_distributed::runtime::PartitionStrategy;
use sisg_distributed::{train_distributed, train_distributed_channels, DistConfig, FaultPlan};
use sisg_simtest::{hit_rate_at_10, simulate, SimConfig};

fn dist() -> DistConfig {
    DistConfig {
        workers: 3,
        dim: 16,
        window: 3,
        negatives: 3,
        epochs: 2,
        hot_set_size: 0,
        sync_interval: 1_000,
        strategy: PartitionStrategy::Hash,
        ..Default::default()
    }
}

#[test]
fn channels_runtime_and_sim_agree_on_accounting_and_quality() {
    let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
    let enriched = EnrichedCorpus::build(&corpus, EnrichOptions::NONE);
    let config = dist();
    let n_items = corpus.config.n_items;

    let (rt_store, rt_report) =
        train_distributed(&enriched, &corpus.sessions, &corpus.catalog, &config);
    let (ch_store, ch_report) =
        train_distributed_channels(&enriched, &corpus.sessions, &corpus.catalog, &config);
    let sim = simulate(
        &enriched,
        &corpus.sessions,
        &corpus.catalog,
        &SimConfig::new(config, FaultPlan::none()),
    );
    assert!(sim.completed);

    // Identical seeded scans => identical per-worker pair loads and
    // identical cross-worker traffic, across all three engines.
    assert_eq!(
        ch_report.pairs_per_worker, rt_report.pairs_per_worker,
        "channels vs shared-memory per-worker pair accounting diverged"
    );
    assert_eq!(
        sim.report.pairs_per_worker, ch_report.pairs_per_worker,
        "sim vs channels per-worker pair accounting diverged"
    );
    assert_eq!(ch_report.remote_pairs, rt_report.remote_pairs);
    assert_eq!(sim.report.remote_pairs, ch_report.remote_pairs);
    assert_eq!(
        sim.report.remote_pairs_per_worker,
        ch_report.remote_pairs_per_worker
    );
    // Message ledger: one request + one response per remote pair, in both
    // message-passing engines.
    assert_eq!(ch_report.messages, 2 * ch_report.remote_pairs);
    assert_eq!(sim.report.messages, 2 * sim.report.remote_pairs);

    // Same data, same schedule, same hyperparameters: all three models
    // must retrieve equally well.
    let hr_rt = hit_rate_at_10(&rt_store, &corpus.sessions, n_items);
    let hr_ch = hit_rate_at_10(&ch_store, &corpus.sessions, n_items);
    let hr_sim = hit_rate_at_10(&sim.store, &corpus.sessions, n_items);
    println!("HR@10 runtime={hr_rt:.4} channels={hr_ch:.4} sim={hr_sim:.4}");
    assert!(hr_rt > 0.0 && hr_ch > 0.0 && hr_sim > 0.0);
    let tolerance = (hr_rt.max(hr_ch) * 0.10).max(0.05);
    assert!(
        (hr_rt - hr_ch).abs() <= tolerance,
        "channels vs runtime HR@10 beyond tolerance: {hr_ch:.4} vs {hr_rt:.4}"
    );
    assert!(
        (hr_sim - hr_ch).abs() <= tolerance,
        "sim vs channels HR@10 beyond tolerance: {hr_sim:.4} vs {hr_ch:.4}"
    );
}
