//! Crash recovery: a worker killed mid-epoch restarts from its last
//! epoch-boundary checkpoint with a bumped incarnation, replays the lost
//! partial epoch, and the cluster still converges — the acceptance
//! criterion is HitRate@10 within 5% relative of the uninterrupted run.

use sisg_corpus::{CorpusConfig, EnrichOptions, EnrichedCorpus, GeneratedCorpus};
use sisg_distributed::runtime::PartitionStrategy;
use sisg_distributed::{CrashSpec, DistConfig, FaultPlan};
use sisg_simtest::{hit_rate_at_10, simulate, SimConfig};

fn dist() -> DistConfig {
    DistConfig {
        workers: 3,
        dim: 16,
        window: 3,
        negatives: 3,
        epochs: 2,
        hot_set_size: 0,
        sync_interval: 1_000,
        strategy: PartitionStrategy::Hash,
        ..Default::default()
    }
}

const CRASHED: usize = 1;

#[test]
fn crash_mid_epoch_recovers_within_five_percent_hit_rate() {
    let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
    let enriched = EnrichedCorpus::build(&corpus, EnrichOptions::NONE);
    let n_items = corpus.config.n_items;

    let clean = simulate(
        &enriched,
        &corpus.sessions,
        &corpus.catalog,
        &SimConfig::new(dist(), FaultPlan::none()),
    );
    assert!(clean.completed);
    let total_pairs = clean.report.pairs_per_worker[CRASHED];
    assert!(
        total_pairs > 8,
        "corpus too small to place a mid-epoch crash"
    );

    // Kill the worker three quarters of the way through its pair stream —
    // mid second epoch, past the epoch-boundary checkpoint it will restore.
    let mut plan = FaultPlan::none();
    plan.crashes.push(CrashSpec {
        worker: CRASHED,
        after_pairs: total_pairs * 3 / 4,
        down_ticks: 128,
    });
    let crashed = simulate(
        &enriched,
        &corpus.sessions,
        &corpus.catalog,
        &SimConfig::new(dist(), plan),
    );
    assert!(crashed.completed, "cluster never drained after the crash");
    assert_eq!(crashed.report.recoveries, 1, "exactly one restart expected");
    assert_eq!(crashed.report.faults_injected, 1);
    // The restored worker replays the checkpointed epoch from its start,
    // so it trains at least as many pairs as the uninterrupted run.
    assert!(crashed.report.pairs_per_worker[CRASHED] >= total_pairs);

    let hr_clean = hit_rate_at_10(&clean.store, &corpus.sessions, n_items);
    let hr_crashed = hit_rate_at_10(&crashed.store, &corpus.sessions, n_items);
    println!("HR@10 clean={hr_clean:.4} crashed+recovered={hr_crashed:.4}");
    assert!(hr_clean > 0.0);
    assert!(
        (hr_clean - hr_crashed).abs() <= hr_clean * 0.05,
        "recovered run outside 5% relative tolerance: clean {hr_clean:.4} vs {hr_crashed:.4}"
    );
}

#[test]
fn crash_in_first_epoch_restores_from_initial_checkpoint() {
    let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
    let enriched = EnrichedCorpus::build(&corpus, EnrichOptions::NONE);

    let mut plan = FaultPlan::none();
    plan.crashes.push(CrashSpec {
        worker: 0,
        after_pairs: 16,
        down_ticks: 64,
    });
    let cfg = SimConfig::new(dist(), plan);
    let a = simulate(&enriched, &corpus.sessions, &corpus.catalog, &cfg);
    assert!(a.completed);
    assert_eq!(a.report.recoveries, 1);

    // A crashy schedule replays just as deterministically as a clean one.
    let b = simulate(&enriched, &corpus.sessions, &corpus.catalog, &cfg);
    assert_eq!(a.trace_hash, b.trace_hash);
    assert_eq!(a.events, b.events);
    assert_eq!(a.report, b.report);
}
