//! Replay determinism: the same `FaultPlan` seed must produce a
//! byte-identical event trace (and identical counters and float bits) on
//! every run — the property that makes a fault reproducible from a bug
//! report containing nothing but a seed.
//!
//! The pinned hashes double as regression traces: they only change when
//! the protocol, the scheduler, or the corpus generator changes behavior,
//! and such a change must be deliberate (re-pin after review). CI runs
//! this file as the simtest smoke (scripts/check.sh).

use sisg_corpus::{CorpusConfig, EnrichOptions, EnrichedCorpus, GeneratedCorpus};
use sisg_distributed::runtime::PartitionStrategy;
use sisg_distributed::{DistConfig, FaultPlan};
use sisg_simtest::{simulate, store_checksum, SimConfig};

fn dist() -> DistConfig {
    DistConfig {
        workers: 3,
        dim: 8,
        window: 2,
        negatives: 2,
        epochs: 1,
        hot_set_size: 0,
        sync_interval: 1_000,
        strategy: PartitionStrategy::Hash,
        ..Default::default()
    }
}

fn faulted(seed: u64) -> SimConfig {
    SimConfig::new(dist(), FaultPlan::message_faults(seed, 0.10, 0.05, 0.05))
}

#[test]
fn same_seed_replays_to_identical_trace_and_bits() {
    let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
    let enriched = EnrichedCorpus::build(&corpus, EnrichOptions::NONE);
    let cfg = faulted(0xDEAD_BEEF);
    let a = simulate(&enriched, &corpus.sessions, &corpus.catalog, &cfg);
    let b = simulate(&enriched, &corpus.sessions, &corpus.catalog, &cfg);
    assert!(a.completed && b.completed);
    assert!(a.report.faults_injected > 0, "plan must actually inject");
    assert_eq!(a.trace_hash, b.trace_hash, "event traces diverged");
    assert_eq!(a.events, b.events);
    assert_eq!(a.ticks, b.ticks);
    assert_eq!(a.report, b.report, "counters diverged");
    assert_eq!(
        store_checksum(&a.store),
        store_checksum(&b.store),
        "trained float bits diverged"
    );
}

#[test]
fn different_seeds_explore_different_schedules() {
    let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
    let enriched = EnrichedCorpus::build(&corpus, EnrichOptions::NONE);
    let a = simulate(&enriched, &corpus.sessions, &corpus.catalog, &faulted(1));
    let b = simulate(&enriched, &corpus.sessions, &corpus.catalog, &faulted(2));
    assert_ne!(
        a.trace_hash, b.trace_hash,
        "distinct seeds should produce distinct traces"
    );
}

/// The three CI smoke seeds with their pinned trace hashes. A failure here
/// means the simulated protocol's behavior changed — re-pin only if the
/// change was intentional.
const PINNED: [(u64, u64); 3] = [
    (0x5EED_0001, 0x6540_6EC9_58D2_A4D5),
    (0x5EED_0002, 0xDC47_2A96_86A0_6786),
    (0x5EED_0003, 0x4732_98EB_38F9_3C42),
];

#[test]
fn pinned_fault_seeds_reproduce_their_traces() {
    let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
    let enriched = EnrichedCorpus::build(&corpus, EnrichOptions::NONE);
    let got: Vec<(u64, u64, bool)> = PINNED
        .iter()
        .map(|&(seed, _)| {
            let out = simulate(&enriched, &corpus.sessions, &corpus.catalog, &faulted(seed));
            (seed, out.trace_hash, out.completed)
        })
        .collect();
    for (seed, hash, completed) in &got {
        println!("seed {seed:#x} -> trace hash {hash:#018X}");
        assert!(completed, "seed {seed:#x} did not drain");
    }
    for ((seed, expected), (_, hash, _)) in PINNED.iter().zip(&got) {
        assert_eq!(
            hash, expected,
            "seed {seed:#x}: trace hash changed (see stdout for current values)"
        );
    }
}
