//! Deterministic fault simulation for the distributed TNS engine.
//!
//! The threaded channels driver ([`sisg_distributed::channels`]) proves the
//! protocol works on real threads, but threads cannot replay a failure: the
//! interleaving differs on every run, and a crash schedule ("kill worker 2
//! after 500 pairs, restart it 200 ticks later") cannot even be expressed.
//! This crate drives the *same* [`WorkerMachine`] state machines under a
//! **virtual-clock scheduler**: every send, delivery, timeout, stall, crash
//! and restart is an event on a totally ordered queue `(tick, event-id)`,
//! and every fault decision is a pure function of the [`FaultPlan`] seed —
//! so one seed replays to a byte-identical event trace, forever.
//!
//! What the simulator models (DESIGN.md §9):
//!
//! - **Message faults** — each send rolls drop / duplicate / delay against
//!   the plan; delays reorder deliveries, duplicates exercise the
//!   idempotency cache, drops exercise retry/give-up.
//! - **Stalls** — a worker freezes for a fixed number of ticks after
//!   processing a threshold of pairs, forcing its peers through their
//!   timeout paths.
//! - **Crash + recovery** — a worker is killed after a threshold of pairs,
//!   its inbox is lost, and after `down_ticks` it restores from its last
//!   epoch-boundary [`ShardCheckpoint`] (serialized and re-parsed, so the
//!   byte codec is on the recovery path) under a bumped incarnation.
//! - **Timeouts** — a waiting worker retransmits after
//!   [`RetryPolicy::timeout_ticks`] virtual ticks and abandons the pair
//!   after `max_attempts`, identical to the threaded driver's policy.
//!
//! [`simulate`] returns the assembled embedding store, the protocol
//! accounting, and the streamed FNV-1a [`SimOutcome::trace_hash`] of the
//! processed event sequence — the regression tests pin those hashes per
//! seed. [`SimOutcome::completed`] is the no-deadlock verdict: the event
//! queue drained with every worker finished.
//!
//! [`RetryPolicy::timeout_ticks`]: sisg_distributed::RetryPolicy

#![warn(missing_docs)]

use sisg_corpus::split::{NextItemSplit, SplitStage};
use sisg_corpus::{Corpus, EnrichedCorpus, ItemCatalog, ItemId, TokenId};
use sisg_distributed::recovery::record_recovery;
use sisg_distributed::{
    build_partition, ChannelReport, Delivered, DistConfig, FaultDecision, FaultPlan,
    MachineCounters, MachineEnv, Message, PartitionMap, RetryVerdict, ShardCheckpoint, Step,
    WorkerMachine,
};
use sisg_embedding::{EmbeddingStore, Matrix};
use sisg_eval::hitrate::{evaluate_hit_rates, ItemRetriever};
use sisg_obs::names as obs_names;
use sisg_sgns::sigmoid::SigmoidTable;
use sisg_sgns::{NoiseTable, PairSampler, SubsampleTable};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::AtomicU64;

/// One simulated run: the training configuration, the fault schedule, and
/// a hard event budget that converts a livelock bug into a clean failure.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Training configuration (`hot_set_size` is ignored, as in the
    /// channels engine).
    pub dist: DistConfig,
    /// Seeded fault schedule. [`FaultPlan::none`] simulates a healthy
    /// cluster.
    pub plan: FaultPlan,
    /// Maximum processed events before the run is declared stuck
    /// (`completed = false`); generous for any legitimate schedule.
    pub max_events: u64,
}

impl SimConfig {
    /// A simulation of `dist` under `plan` with the default event budget.
    pub fn new(dist: DistConfig, plan: FaultPlan) -> Self {
        Self {
            dist,
            plan,
            max_events: 20_000_000,
        }
    }
}

/// The result of one simulated run.
pub struct SimOutcome {
    /// The assembled global embedding store.
    pub store: EmbeddingStore,
    /// Protocol accounting, same shape as the threaded driver's report.
    pub report: ChannelReport,
    /// Streaming FNV-1a hash of the processed event sequence — two runs of
    /// the same corpus/config/plan produce the same hash, byte for byte.
    pub trace_hash: u64,
    /// Number of events processed.
    pub events: u64,
    /// Final virtual-clock value.
    pub ticks: u64,
    /// True when the event queue drained with every worker finished and
    /// every inbox empty — the no-deadlock/no-livelock verdict.
    pub completed: bool,
}

/// Streaming FNV-1a over event records.
struct TraceHasher {
    h: u64,
}

impl TraceHasher {
    fn new() -> Self {
        Self {
            h: 0xCBF2_9CE4_8422_2325,
        }
    }

    fn eat_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn eat(&mut self, v: u64) {
        self.eat_bytes(&v.to_le_bytes());
    }
}

const TAG_TURN: u64 = 1;
const TAG_DELIVER: u64 = 2;
const TAG_RESTART: u64 = 3;
const TAG_CRASH: u64 = 4;
const TAG_STALL: u64 = 5;
const TAG_LOST: u64 = 6;
const TAG_DROP: u64 = 7;

enum EventKind {
    /// Give worker `worker` one unit of work; stale when `gen` no longer
    /// matches the worker's current turn generation.
    Turn { worker: usize, gen: u64 },
    /// A message arrives at `to`'s inbox.
    Deliver { to: usize, msg: Message },
    /// A crashed worker restores from its checkpoint.
    Restart { worker: usize },
}

struct Event {
    time: u64,
    eid: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.eid) == (other.time, other.eid)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.eid).cmp(&(other.time, other.eid))
    }
}

/// Everything the machines borrow, bundled so a restart can mint a fresh
/// [`MachineEnv`] mid-run.
struct EnvSrc<'a> {
    workers: usize,
    config: &'a DistConfig,
    enriched: &'a EnrichedCorpus,
    partition: &'a PartitionMap,
    noise_tables: &'a [NoiseTable],
    subsample: &'a SubsampleTable,
    sampler: PairSampler,
    sigmoid: &'a SigmoidTable,
    progress: &'a AtomicU64,
    schedule_pairs: u64,
}

impl<'a> EnvSrc<'a> {
    fn env(&self, me: usize) -> MachineEnv<'a> {
        MachineEnv {
            me,
            workers: self.workers,
            config: self.config,
            enriched: self.enriched,
            partition: self.partition,
            noise_tables: self.noise_tables,
            subsample: self.subsample,
            sampler: self.sampler,
            sigmoid: self.sigmoid,
            progress: self.progress,
            schedule_pairs: self.schedule_pairs,
        }
    }
}

struct SimWorker<'a> {
    machine: Option<WorkerMachine<'a>>,
    inbox: VecDeque<Message>,
    /// Virtual tick at which the outstanding request times out.
    deadline: Option<u64>,
    /// Per-send fault-roll index, monotonically increasing (retransmits
    /// get fresh rolls, as in the threaded driver).
    send_index: u64,
    incarnation: u64,
    /// Serialized epoch-boundary [`ShardCheckpoint`]; refreshed at every
    /// [`Step::EpochEnd`].
    checkpoint: Vec<u8>,
    turn_gen: u64,
    turn_time: Option<u64>,
    crash_fired: bool,
    stall_fired: bool,
    down: bool,
    restore_failed: bool,
}

/// What a turn decided, applied after the worker borrow is released.
enum TurnAction {
    /// Nothing left to do; the worker's turn chain pauses until a
    /// delivery or restart wakes it.
    Idle,
    /// Take the next turn at this tick.
    Next(u64),
    /// Ship a message, then take the next turn at `next` (if any).
    Send {
        to: usize,
        msg: Message,
        next: Option<u64>,
    },
    /// A stall fired: freeze until this tick.
    Stalled(u64),
}

struct Sim<'a> {
    envsrc: EnvSrc<'a>,
    plan: &'a FaultPlan,
    workers: Vec<SimWorker<'a>>,
    heap: BinaryHeap<Reverse<Event>>,
    next_eid: u64,
    trace: TraceHasher,
    events: u64,
    now: u64,
    faults_injected: u64,
    recoveries: u64,
}

impl<'a> Sim<'a> {
    fn new(envsrc: EnvSrc<'a>, plan: &'a FaultPlan) -> Self {
        let w = envsrc.workers;
        let mut sim = Self {
            envsrc,
            plan,
            workers: Vec::with_capacity(w),
            heap: BinaryHeap::new(),
            next_eid: 0,
            trace: TraceHasher::new(),
            events: 0,
            now: 0,
            faults_injected: 0,
            recoveries: 0,
        };
        for me in 0..w {
            let machine = WorkerMachine::new(sim.envsrc.env(me));
            let checkpoint = machine.checkpoint().to_bytes();
            sim.workers.push(SimWorker {
                machine: Some(machine),
                inbox: VecDeque::new(),
                deadline: None,
                send_index: 0,
                incarnation: 0,
                checkpoint,
                turn_gen: 0,
                turn_time: None,
                crash_fired: false,
                stall_fired: false,
                down: false,
                restore_failed: false,
            });
        }
        for me in 0..w {
            sim.schedule_turn(me, 0);
        }
        sim
    }

    fn push(&mut self, time: u64, kind: EventKind) {
        let eid = self.next_eid;
        self.next_eid += 1;
        self.heap.push(Reverse(Event { time, eid, kind }));
    }

    /// Schedules a turn for `w` at `t`, keeping at most one live turn per
    /// worker (the earliest requested; later pending ones go stale via the
    /// generation counter).
    fn schedule_turn(&mut self, w: usize, t: u64) {
        let wk = &mut self.workers[w];
        if wk.down {
            return;
        }
        if let Some(existing) = wk.turn_time {
            if existing <= t {
                return;
            }
        }
        wk.turn_gen += 1;
        wk.turn_time = Some(t);
        let gen = wk.turn_gen;
        self.push(t, EventKind::Turn { worker: w, gen });
    }

    /// Routes one message through the fault plan.
    fn send(&mut self, from: usize, to: usize, msg: Message, now: u64) {
        let idx = {
            let wk = &mut self.workers[from];
            let idx = wk.send_index;
            wk.send_index += 1;
            idx
        };
        match self.plan.decide(from, idx) {
            FaultDecision::Deliver => self.push(now + 1, EventKind::Deliver { to, msg }),
            FaultDecision::Drop => {
                self.faults_injected += 1;
                self.trace.eat(TAG_DROP);
                self.trace.eat(now);
                self.trace.eat(from as u64);
            }
            FaultDecision::Duplicate => {
                self.faults_injected += 1;
                self.push(
                    now + 1,
                    EventKind::Deliver {
                        to,
                        msg: msg.clone(),
                    },
                );
                self.push(now + 2, EventKind::Deliver { to, msg });
            }
            FaultDecision::Delay(d) => {
                self.faults_injected += 1;
                self.push(now + 1 + d, EventKind::Deliver { to, msg });
            }
        }
    }

    fn on_turn(&mut self, w: usize, now: u64) {
        let retry_ticks = self.plan.retry.timeout_ticks.max(1);
        let max_attempts = self.plan.retry.max_attempts;
        let stall = self.plan.stalls.iter().find(|s| s.worker == w).copied();
        let action = {
            let partition = self.envsrc.partition;
            let wk = &mut self.workers[w];
            let Some(machine) = wk.machine.as_mut() else {
                return;
            };
            let stall_due =
                stall.is_some_and(|s| !wk.stall_fired && machine.counters().pairs >= s.after_pairs);
            if stall_due {
                wk.stall_fired = true;
                TurnAction::Stalled(now + stall.map(|s| s.ticks).unwrap_or(1).max(1))
            } else {
                let mut st = WkState {
                    inbox: &mut wk.inbox,
                    deadline: &mut wk.deadline,
                    checkpoint: &mut wk.checkpoint,
                };
                machine_turn(machine, &mut st, partition, now, retry_ticks, max_attempts)
            }
        };
        match action {
            TurnAction::Idle => {}
            TurnAction::Next(t) => self.schedule_turn(w, t),
            TurnAction::Send { to, msg, next } => {
                self.send(w, to, msg, now);
                if let Some(t) = next {
                    self.schedule_turn(w, t);
                }
            }
            TurnAction::Stalled(until) => {
                self.faults_injected += 1;
                self.trace.eat(TAG_STALL);
                self.trace.eat(now);
                self.trace.eat(w as u64);
                self.schedule_turn(w, until);
            }
        }
        self.check_crash(w, now);
    }

    fn on_deliver(&mut self, to: usize, msg: Message, now: u64) {
        let lost = {
            let wk = &mut self.workers[to];
            if wk.down || wk.machine.is_none() {
                true
            } else {
                wk.inbox.push_back(msg);
                false
            }
        };
        if lost {
            self.trace.eat(TAG_LOST);
            self.trace.eat(now);
            self.trace.eat(to as u64);
        } else {
            self.schedule_turn(to, now);
        }
    }

    fn check_crash(&mut self, w: usize, now: u64) {
        let Some(spec) = self.plan.crashes.iter().find(|c| c.worker == w).copied() else {
            return;
        };
        let fire = {
            let wk = &self.workers[w];
            !wk.crash_fired
                && !wk.down
                && wk
                    .machine
                    .as_ref()
                    .is_some_and(|m| m.counters().pairs >= spec.after_pairs)
        };
        if !fire {
            return;
        }
        {
            let wk = &mut self.workers[w];
            wk.crash_fired = true;
            wk.down = true;
            wk.machine = None;
            wk.inbox.clear();
            wk.deadline = None;
            wk.turn_gen += 1;
            wk.turn_time = None;
        }
        self.faults_injected += 1;
        self.trace.eat(TAG_CRASH);
        self.trace.eat(now);
        self.trace.eat(w as u64);
        self.push(
            now + spec.down_ticks.max(1),
            EventKind::Restart { worker: w },
        );
    }

    fn on_restart(&mut self, w: usize, now: u64) {
        let ck = match ShardCheckpoint::from_bytes(&self.workers[w].checkpoint) {
            Ok(ck) => ck,
            Err(_) => {
                self.workers[w].restore_failed = true;
                return;
            }
        };
        let incarnation = self.workers[w].incarnation + 1;
        match WorkerMachine::restore(self.envsrc.env(w), &ck, incarnation) {
            Ok(machine) => {
                {
                    let wk = &mut self.workers[w];
                    wk.machine = Some(machine);
                    wk.incarnation = incarnation;
                    wk.down = false;
                    wk.deadline = None;
                }
                self.recoveries += 1;
                record_recovery();
                self.schedule_turn(w, now);
            }
            Err(_) => {
                self.workers[w].restore_failed = true;
            }
        }
    }

    /// Drives the event queue to completion (or the event budget).
    /// Returns true when the queue drained naturally.
    fn run(&mut self, max_events: u64) -> bool {
        while let Some(Reverse(ev)) = self.heap.pop() {
            if self.events >= max_events {
                return false;
            }
            self.now = ev.time;
            match ev.kind {
                EventKind::Turn { worker, gen } => {
                    if self.workers[worker].turn_gen != gen {
                        continue; // superseded by an earlier wake-up
                    }
                    self.workers[worker].turn_time = None;
                    self.events += 1;
                    self.trace.eat(TAG_TURN);
                    self.trace.eat(ev.time);
                    self.trace.eat(worker as u64);
                    self.on_turn(worker, ev.time);
                }
                EventKind::Deliver { to, msg } => {
                    self.events += 1;
                    self.trace.eat(TAG_DELIVER);
                    self.trace.eat(ev.time);
                    self.trace.eat(to as u64);
                    self.trace.eat_bytes(&msg.to_bytes());
                    self.on_deliver(to, msg, ev.time);
                }
                EventKind::Restart { worker } => {
                    self.events += 1;
                    self.trace.eat(TAG_RESTART);
                    self.trace.eat(ev.time);
                    self.trace.eat(worker as u64);
                    self.on_restart(worker, ev.time);
                }
            }
        }
        true
    }
}

/// The pieces of [`SimWorker`] a turn may mutate while the machine itself
/// is mutably borrowed.
struct WkState<'s> {
    inbox: &'s mut VecDeque<Message>,
    deadline: &'s mut Option<u64>,
    checkpoint: &'s mut Vec<u8>,
}

/// One unit of machine work: serve the inbox first (mirrors the threaded
/// driver's service-before-pump rule), then the timeout path, then the
/// scan.
fn machine_turn(
    machine: &mut WorkerMachine<'_>,
    st: &mut WkState<'_>,
    partition: &PartitionMap,
    now: u64,
    retry_ticks: u64,
    max_attempts: u32,
) -> TurnAction {
    if let Some(msg) = st.inbox.pop_front() {
        return match machine.deliver(msg) {
            Delivered::Reply { to, response } => TurnAction::Send {
                to,
                msg: Message::Response(response),
                next: Some(now + 1),
            },
            Delivered::Applied => {
                *st.deadline = None;
                TurnAction::Next(now + 1)
            }
            Delivered::Ignored => TurnAction::Next(now + 1),
        };
    }
    if machine.is_waiting() {
        let dl = st.deadline.unwrap_or(now);
        if now < dl {
            return TurnAction::Next(dl);
        }
        return match machine.retry(max_attempts) {
            RetryVerdict::Resend(req) => {
                let owner = partition.owner(req.context);
                *st.deadline = Some(now + retry_ticks);
                TurnAction::Send {
                    to: owner,
                    msg: Message::Request(req),
                    next: Some(now + retry_ticks),
                }
            }
            RetryVerdict::GaveUp | RetryVerdict::Idle => {
                *st.deadline = None;
                TurnAction::Next(now + 1)
            }
        };
    }
    if machine.is_finished() {
        return TurnAction::Idle;
    }
    match machine.step() {
        Step::Sent(req) => {
            let owner = partition.owner(req.context);
            *st.deadline = Some(now + retry_ticks);
            TurnAction::Send {
                to: owner,
                msg: Message::Request(req),
                next: Some(now + retry_ticks),
            }
        }
        Step::Progress => TurnAction::Next(now + 1),
        Step::EpochEnd(_) => {
            *st.checkpoint = machine.checkpoint().to_bytes();
            TurnAction::Next(now + 1)
        }
        Step::Finished => TurnAction::Idle,
    }
}

/// Runs one simulated distributed training under `sim`'s fault plan.
///
/// Pure virtual time: no wall clock, no OS scheduling, no thread entropy —
/// the outcome (trace hash, counters, and with `workers == 1` or a
/// fault-free plan even the float bits) is a function of
/// `(enriched, sessions, catalog, sim)` alone.
pub fn simulate(
    enriched: &EnrichedCorpus,
    sessions: &Corpus,
    catalog: &ItemCatalog,
    sim: &SimConfig,
) -> SimOutcome {
    let config = &sim.dist;
    assert!(config.workers > 0, "need at least one worker");
    let w = config.workers;
    let space = enriched.space();
    let vocab = enriched.vocab();
    let partition = build_partition(config, sessions, catalog, space);
    let members = partition.members();
    let noise_tables: Vec<NoiseTable> = (0..w)
        .map(|j| {
            let freqs: Vec<u64> = members[j].iter().map(|t| vocab.freq(*t).max(1)).collect();
            NoiseTable::from_token_freqs(&members[j], &freqs, config.noise_exponent)
        })
        .collect();
    let subsample = SubsampleTable::new(vocab.freqs(), config.subsample);
    let sigmoid = SigmoidTable::new();
    let sampler = PairSampler {
        window: config.window,
        mode: config.window_mode,
        dynamic: false,
    };
    let progress = AtomicU64::new(0);
    let schedule_pairs: u64 = {
        let directional = config.window_mode == sisg_sgns::WindowMode::RightOnly;
        enriched
            .count_positive_pairs(config.window, directional)
            .max(1)
            * config.epochs as u64
    };

    let envsrc = EnvSrc {
        workers: w,
        config,
        enriched,
        partition: &partition,
        noise_tables: &noise_tables,
        subsample: &subsample,
        sampler,
        sigmoid: &sigmoid,
        progress: &progress,
        schedule_pairs,
    };

    let mut engine = Sim::new(envsrc, &sim.plan);
    let drained = engine.run(sim.max_events);
    let completed = drained
        && engine.workers.iter().all(|wk| {
            !wk.down
                && !wk.restore_failed
                && wk.inbox.is_empty()
                && wk.machine.as_ref().is_some_and(|m| m.is_finished())
        });
    let Sim {
        workers: sim_workers,
        envsrc,
        trace,
        events,
        now: ticks,
        faults_injected,
        recoveries,
        ..
    } = engine;
    let trace_hash = trace.h;

    // Assemble the store and the report from the final shards. A worker
    // still down at the end contributes its last checkpoint.
    let dim = config.dim;
    let mut input = Matrix::zeros(space.len(), dim);
    let mut output = Matrix::zeros(space.len(), dim);
    let mut report = ChannelReport {
        faults_injected,
        recoveries,
        ..Default::default()
    };
    for (me, wk) in sim_workers.into_iter().enumerate() {
        let machine = match wk.machine {
            Some(m) => Some(m),
            None => ShardCheckpoint::from_bytes(&wk.checkpoint)
                .ok()
                .and_then(|ck| {
                    WorkerMachine::restore(envsrc.env(me), &ck, wk.incarnation + 1).ok()
                }),
        };
        let Some(machine) = machine else { continue };
        let (shard, counters) = machine.into_parts();
        absorb(&mut report, &counters);
        shard.export_into(&partition, me, &mut input, &mut output);
    }
    publish_to_obs(&report);

    SimOutcome {
        store: EmbeddingStore::from_matrices(input, output),
        report,
        trace_hash,
        events,
        ticks,
        completed,
    }
}

fn absorb(report: &mut ChannelReport, c: &MachineCounters) {
    report.pairs += c.pairs;
    report.remote_pairs += c.remote_pairs;
    report.messages += c.messages;
    report.payload_bytes += c.payload_bytes;
    report.retries += c.retries;
    report.requests_deduped += c.requests_deduped;
    report.stale_responses += c.stale_responses;
    report.gave_up += c.gave_up;
    report.pairs_per_worker.push(c.pairs);
    report.remote_pairs_per_worker.push(c.remote_pairs);
}

fn publish_to_obs(report: &ChannelReport) {
    let reg = sisg_obs::registry();
    reg.counter(obs_names::DIST_CHANNEL_MESSAGES_TOTAL)
        .add(report.messages);
    reg.counter(obs_names::DIST_CHANNEL_PAYLOAD_BYTES_TOTAL)
        .add(report.payload_bytes);
    reg.counter(obs_names::DIST_FAULTS_INJECTED_TOTAL)
        .add(report.faults_injected);
    reg.counter(obs_names::DIST_RETRIES_TOTAL)
        .add(report.retries);
    reg.counter(obs_names::DIST_REQUESTS_DEDUPED_TOTAL)
        .add(report.requests_deduped);
}

/// Brute-force cosine retrieval over a store's item rows — the evaluation
/// backend for the fault-tolerance HitRate comparisons (small corpora, so
/// exactness beats an ANN index here).
pub struct StoreRetriever<'a> {
    store: &'a EmbeddingStore,
    n_items: u32,
}

impl<'a> StoreRetriever<'a> {
    /// Wraps `store`, treating tokens `0..n_items` as the item rows.
    pub fn new(store: &'a EmbeddingStore, n_items: u32) -> Self {
        Self { store, n_items }
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl ItemRetriever for StoreRetriever<'_> {
    fn retrieve(&self, query: ItemId, k: usize) -> Vec<ItemId> {
        let q = self.store.input(TokenId(query.0));
        let qn = dot(q, q).sqrt().max(1e-12);
        let mut scored: Vec<(f32, u32)> = (0..self.n_items)
            .filter(|&i| i != query.0)
            .map(|i| {
                let v = self.store.input(TokenId(i));
                let vn = dot(v, v).sqrt().max(1e-12);
                (dot(q, v) / (qn * vn), i)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.truncate(k);
        scored.into_iter().map(|(_, i)| ItemId(i)).collect()
    }
}

/// HitRate@10 of `store` under the next-item protocol on `sessions`.
///
/// Used for *relative* comparisons between two runs of the same corpus
/// (faulted vs. fault-free, crashed-and-recovered vs. uninterrupted), so
/// the eval cases are drawn from the full session set for both sides.
pub fn hit_rate_at_10(store: &EmbeddingStore, sessions: &Corpus, n_items: u32) -> f64 {
    let split = NextItemSplit::default().split(sessions, SplitStage::Test);
    let retriever = StoreRetriever::new(store, n_items);
    evaluate_hit_rates("sim", &retriever, &split.eval, &[10])
        .at(10)
        .unwrap_or(0.0)
}

/// FNV-1a over every float bit of the store's two matrices — the
/// bit-identity fingerprint the determinism tests compare.
pub fn store_checksum(store: &EmbeddingStore) -> u64 {
    let mut h = TraceHasher::new();
    for v in store.input_matrix().as_slice() {
        h.eat_bytes(&v.to_bits().to_le_bytes());
    }
    for v in store.output_matrix().as_slice() {
        h.eat_bytes(&v.to_bits().to_le_bytes());
    }
    h.h
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisg_corpus::{CorpusConfig, EnrichOptions, GeneratedCorpus};
    use sisg_distributed::runtime::PartitionStrategy;

    fn dist(workers: usize) -> DistConfig {
        DistConfig {
            workers,
            dim: 8,
            window: 2,
            negatives: 2,
            epochs: 1,
            hot_set_size: 0,
            sync_interval: 1_000,
            strategy: PartitionStrategy::Hash,
            ..Default::default()
        }
    }

    #[test]
    fn fault_free_simulation_completes_and_replays() {
        let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
        let enriched = EnrichedCorpus::build(&corpus, EnrichOptions::NONE);
        let cfg = SimConfig::new(dist(3), FaultPlan::none());
        let a = simulate(&enriched, &corpus.sessions, &corpus.catalog, &cfg);
        assert!(a.completed, "fault-free run must drain");
        assert!(a.report.pairs > 0);
        assert_eq!(a.report.messages, a.report.remote_pairs * 2);
        assert_eq!(a.report.retries, 0);
        assert_eq!(a.report.faults_injected, 0);
        let b = simulate(&enriched, &corpus.sessions, &corpus.catalog, &cfg);
        assert_eq!(a.trace_hash, b.trace_hash, "virtual clock must replay");
        assert_eq!(a.events, b.events);
        assert_eq!(store_checksum(&a.store), store_checksum(&b.store));
    }

    #[test]
    fn single_worker_needs_no_messages() {
        let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
        let enriched = EnrichedCorpus::build(&corpus, EnrichOptions::NONE);
        let cfg = SimConfig::new(dist(1), FaultPlan::none());
        let out = simulate(&enriched, &corpus.sessions, &corpus.catalog, &cfg);
        assert!(out.completed);
        assert_eq!(out.report.remote_pairs, 0);
        assert_eq!(out.report.messages, 0);
    }

    #[test]
    fn store_retriever_ranks_by_cosine() {
        let mut input = Matrix::zeros(4, 2);
        let mut output = Matrix::zeros(4, 2);
        // Item 0 points at (1, 0); item 2 nearly parallel, item 1
        // orthogonal, item 3 opposite.
        for (row, v) in [[1.0f32, 0.0], [0.0, 1.0], [0.9, 0.1], [-1.0, 0.0]]
            .iter()
            .enumerate()
        {
            input.row_mut(row).copy_from_slice(v);
            output.row_mut(row).copy_from_slice(v);
        }
        let store = EmbeddingStore::from_matrices(input, output);
        let r = StoreRetriever::new(&store, 4);
        let got = r.retrieve(ItemId(0), 2);
        assert_eq!(got, vec![ItemId(2), ItemId(1)]);
    }
}
