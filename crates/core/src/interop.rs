//! word2vec interchange for whole SISG models.
//!
//! Closes the loop on the paper's practicability claim: enriched sequences
//! go *out* as text ([`sisg_corpus::enrich::EnrichedCorpus::write_text`]),
//! an external word2vec tool trains them, and its vectors come back *in*
//! here — or equally, vectors trained by this workspace export to any
//! downstream consumer that reads the standard format. Input and output
//! matrices are exchanged as two separate files since the classic format
//! only carries one matrix (most tools discard output vectors; SISG's
//! directional similarity needs them).

use crate::error::CoreError;
use crate::model::SisgModel;
use crate::variants::Variant;
use sisg_corpus::vocab::TokenSpace;
use sisg_corpus::TokenId;
use sisg_embedding::word2vec::{read_text, write_text, W2vParseError};
use sisg_embedding::{EmbeddingStore, Matrix};
use std::io::{self, BufRead, Write};

/// Writes the model's *input* matrix in word2vec text format, tokens named
/// in the paper's encoding.
pub fn export_input<W: Write>(model: &SisgModel, out: &mut W) -> io::Result<()> {
    let space = model.space().clone();
    write_text(
        model.store().input_matrix(),
        move |i| space.describe(TokenId(i as u32)),
        out,
    )
}

/// Writes the model's *output* matrix (same naming).
pub fn export_output<W: Write>(model: &SisgModel, out: &mut W) -> io::Result<()> {
    let space = model.space().clone();
    write_text(
        model.store().output_matrix(),
        move |i| space.describe(TokenId(i as u32)),
        out,
    )
}

/// Errors raised while importing external vectors.
#[derive(Debug, PartialEq)]
pub enum ImportError {
    /// The file itself was malformed.
    Parse(W2vParseError),
    /// A token name did not parse under the given [`TokenSpace`].
    UnknownToken(String),
    /// The file's dimensionality disagrees between input and output files.
    DimMismatch {
        /// Input-matrix dimensionality.
        input: usize,
        /// Output-matrix dimensionality.
        output: usize,
    },
    /// The imported matrices could not back a model (e.g. they do not
    /// cover the token space).
    Model(CoreError),
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Parse(e) => write!(f, "parse error: {e}"),
            ImportError::UnknownToken(t) => write!(f, "unknown token '{t}'"),
            ImportError::DimMismatch { input, output } => {
                write!(f, "dim mismatch: input {input}, output {output}")
            }
            ImportError::Model(e) => write!(f, "model construction failed: {e}"),
        }
    }
}

impl std::error::Error for ImportError {}

impl From<W2vParseError> for ImportError {
    fn from(e: W2vParseError) -> Self {
        ImportError::Parse(e)
    }
}

impl From<CoreError> for ImportError {
    fn from(e: CoreError) -> Self {
        ImportError::Model(e)
    }
}

/// Reads one word2vec file into a matrix laid out by `space` (rows the file
/// does not mention stay zero). Returns the matrix and its dimensionality.
fn import_matrix<R: BufRead>(space: &TokenSpace, input: R) -> Result<(Matrix, usize), ImportError> {
    let (names, parsed) = read_text(input)?;
    let dim = parsed.dim();
    let mut matrix = Matrix::zeros(space.len(), dim);
    for (row, name) in names.iter().enumerate() {
        let token = space
            .parse(name)
            .ok_or_else(|| ImportError::UnknownToken(name.clone()))?;
        matrix
            .row_mut(token.index())
            .copy_from_slice(parsed.row(row));
    }
    Ok((matrix, dim))
}

/// Builds a [`SisgModel`] from externally trained vectors: an input-matrix
/// file plus an optional output-matrix file (required for `-D` variants;
/// zeros otherwise).
pub fn import_model<R1: BufRead, R2: BufRead>(
    variant: Variant,
    space: TokenSpace,
    input_file: R1,
    output_file: Option<R2>,
) -> Result<SisgModel, ImportError> {
    let (input, in_dim) = import_matrix(&space, input_file)?;
    let output = match output_file {
        Some(f) => {
            let (output, out_dim) = import_matrix(&space, f)?;
            if out_dim != in_dim {
                return Err(ImportError::DimMismatch {
                    input: in_dim,
                    output: out_dim,
                });
            }
            output
        }
        None => Matrix::zeros(space.len(), in_dim),
    };
    let store = EmbeddingStore::from_matrices(input, output);
    Ok(SisgModel::from_store(variant, space, store)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisg_corpus::{CorpusConfig, GeneratedCorpus, ItemId};
    use sisg_sgns::SgnsConfig;

    fn trained() -> SisgModel {
        let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
        let cfg = SgnsConfig {
            dim: 8,
            window: 3,
            negatives: 3,
            epochs: 1,
            ..Default::default()
        };
        SisgModel::train(&corpus, Variant::SisgFUD, &cfg)
            .expect("train")
            .0
    }

    #[test]
    fn export_import_roundtrip_preserves_retrieval() {
        let model = trained();
        let mut input = Vec::new();
        let mut output = Vec::new();
        export_input(&model, &mut input).unwrap();
        export_output(&model, &mut output).unwrap();

        let back = import_model(
            Variant::SisgFUD,
            model.space().clone(),
            &input[..],
            Some(&output[..]),
        )
        .unwrap();
        for q in [ItemId(0), ItemId(7), ItemId(100)] {
            let a: Vec<u32> = model
                .similar_items(q, 10)
                .iter()
                .map(|n| n.token.0)
                .collect();
            let b: Vec<u32> = back
                .similar_items(q, 10)
                .iter()
                .map(|n| n.token.0)
                .collect();
            assert_eq!(a, b, "retrieval diverges after roundtrip for {q:?}");
        }
    }

    #[test]
    fn import_without_output_matrix_works_for_symmetric() {
        let model = trained();
        let mut input = Vec::new();
        export_input(&model, &mut input).unwrap();
        let back = import_model(
            Variant::SisgF,
            model.space().clone(),
            &input[..],
            None::<&[u8]>,
        )
        .unwrap();
        assert_eq!(back.store().dim(), model.store().dim());
    }

    #[test]
    fn unknown_tokens_are_rejected() {
        let model = trained();
        let bogus = b"1 2\nnot_a_real_token_9 0.1 0.2\n";
        let err = import_model(
            Variant::SisgF,
            model.space().clone(),
            &bogus[..],
            None::<&[u8]>,
        )
        .unwrap_err();
        assert!(matches!(err, ImportError::UnknownToken(_)));
    }

    #[test]
    fn dim_mismatch_is_rejected() {
        let model = trained();
        let input = b"1 2\nitem_0 0.1 0.2\n";
        let output = b"1 3\nitem_0 0.1 0.2 0.3\n";
        let err = import_model(
            Variant::SisgFUD,
            model.space().clone(),
            &input[..],
            Some(&output[..]),
        )
        .unwrap_err();
        assert_eq!(
            err,
            ImportError::DimMismatch {
                input: 2,
                output: 3
            }
        );
    }
}
