//! SISG — the Side-Information-enhanced Skip-Gram framework of
//! *"Billion-scale Recommendation with Heterogeneous Side Information at
//! Taobao"* (ICDE 2020).
//!
//! The framework is deliberately thin (that is its "practicability" selling
//! point): behavior sequences are enriched with item SI tokens and user-type
//! tokens (Eq. 4, implemented in [`sisg_corpus::enrich`]), fed to a standard
//! SGNS engine ([`sisg_sgns`]), and item similarity is read off the learned
//! vectors — by cosine for symmetric variants, or by the asymmetric
//! `input·output` product for the directional (`-D`) variants
//! (Section II-C).
//!
//! This crate provides:
//!
//! - [`variants::Variant`] — the six model variants of Table III
//!   (`SGNS`, `SISG-F`, `SISG-U`, `SISG-F-U`, `SISG-F-U-D`, plus the extra
//!   `SISG-D` ablation);
//! - [`model::SisgModel`] — training plus item-to-item retrieval in the
//!   joint semantic space;
//! - [`cold_start`] — Eq. (6) cold-item inference and Figure-4-style
//!   cold-user recommendation via user-type vector averaging;
//! - [`recommender::Recommender`] — the high-level matching-stage API.

#![warn(missing_docs)]

pub mod cold_start;
pub mod error;
pub mod interop;
pub mod model;
pub mod recommender;
pub mod serving;
pub mod variants;

pub use cold_start::SiAggregation;
pub use error::CoreError;
pub use model::{SisgModel, SisgTrainReport};
pub use recommender::{Recommendation, Recommender};
pub use serving::{MatchingService, ServingConfig, ServingConfigBuilder, ServingStats};
pub use variants::{SimilarityMode, Variant};
