//! The typed error surface of the SISG core.
//!
//! Every fallible public path of this crate — model construction, the
//! matching-stage artifact, and the two cold-start fallbacks — returns
//! [`CoreError`] instead of asserting. The serving layer must never be
//! able to panic out from under a request (`xtask lint` bans
//! `unwrap`/`expect`/`assert!` in this crate's non-test code), so invalid
//! configurations are rejected at build time and malformed queries come
//! back as values the caller can route, count, and degrade on.

use sisg_corpus::schema::ItemFeature;
use sisg_corpus::{ItemId, UserTypeId};

/// Errors raised by model construction and the serving paths.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration field failed validation at build time.
    InvalidConfig {
        /// The offending field, e.g. `"k"` or `"dim"`.
        field: &'static str,
        /// Why the value was rejected.
        reason: &'static str,
    },
    /// `item_clicks` does not cover the model's item catalog.
    ClickCountMismatch {
        /// Items in the model's token space.
        items: usize,
        /// Entries in the provided click-count slice.
        clicks: usize,
    },
    /// An embedding store does not cover the token space it was paired
    /// with (or carries no dimensions at all).
    StoreSpaceMismatch {
        /// Tokens the space requires.
        space_tokens: usize,
        /// Rows the store actually has.
        store_tokens: usize,
    },
    /// A query named an item outside the trained catalog.
    UnknownItem(ItemId),
    /// A query named a user type outside the trained registry.
    UnknownUserType(UserTypeId),
    /// A cold-item query carried an SI value outside the feature's
    /// realized value space.
    SiValueOutOfRange {
        /// The feature whose value was out of range.
        feature: ItemFeature,
        /// The offending value.
        value: u32,
        /// The feature's cardinality in the trained token space.
        cardinality: u32,
    },
    /// A cold-user query matched no realized user type.
    NoMatchingUserType,
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidConfig { field, reason } => {
                write!(f, "invalid config: `{field}` {reason}")
            }
            CoreError::ClickCountMismatch { items, clicks } => write!(
                f,
                "click counts must cover items: {items} items, {clicks} counts"
            ),
            CoreError::StoreSpaceMismatch {
                space_tokens,
                store_tokens,
            } => write!(
                f,
                "embedding store has {store_tokens} rows but the token space needs {space_tokens}"
            ),
            CoreError::UnknownItem(item) => write!(f, "unknown item {}", item.0),
            CoreError::UnknownUserType(ut) => write!(f, "unknown user type {}", ut.0),
            CoreError::SiValueOutOfRange {
                feature,
                value,
                cardinality,
            } => write!(
                f,
                "SI value {value} out of range for {feature:?} (cardinality {cardinality})"
            ),
            CoreError::NoMatchingUserType => {
                write!(f, "no realized user type matches the demographics")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(CoreError, &str)> = vec![
            (
                CoreError::InvalidConfig {
                    field: "k",
                    reason: "must be at least 1",
                },
                "k",
            ),
            (
                CoreError::ClickCountMismatch {
                    items: 10,
                    clicks: 9,
                },
                "10",
            ),
            (
                CoreError::StoreSpaceMismatch {
                    space_tokens: 5,
                    store_tokens: 3,
                },
                "3",
            ),
            (CoreError::UnknownItem(ItemId(7)), "7"),
            (CoreError::UnknownUserType(UserTypeId(3)), "3"),
            (
                CoreError::SiValueOutOfRange {
                    feature: ItemFeature::Brand,
                    value: 99,
                    cardinality: 4,
                },
                "99",
            ),
            (CoreError::NoMatchingUserType, "user type"),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "`{text}` lacks `{needle}`");
        }
    }
}
