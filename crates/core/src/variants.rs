//! The model variants of Table III.
//!
//! Each variant is a point in a three-axis space: item SI on/off (`-F`),
//! user types on/off (`-U`), and directional windows + asymmetric
//! similarity on/off (`-D`). EGES is a separate baseline (crate
//! [`sisg_eges`](https://docs.rs) in this workspace) since it has its own
//! architecture.

use sisg_corpus::EnrichOptions;
use sisg_sgns::WindowMode;

/// How item-to-item similarity is computed after training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimilarityMode {
    /// Cosine between input vectors — valid when pairs came from symmetric
    /// windows.
    CosineInput,
    /// `input(v_i) · output(v_j)` — the asymmetric similarity of
    /// Section II-C, required when sampling used the right context only.
    InputOutput,
}

/// The SISG model variants evaluated in Table III, plus one extra ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Classic SGNS on item-only sequences.
    Sgns,
    /// SISG-F: item SI injected, symmetric windows.
    SisgF,
    /// SISG-U: user types injected, symmetric windows.
    SisgU,
    /// SISG-F-U: item SI + user types, symmetric windows.
    SisgFU,
    /// SISG-F-U-D: full model — SI, user types, directional windows and
    /// asymmetric similarity.
    SisgFUD,
    /// Extra ablation (not a Table III row): directionality alone, without
    /// any SI — isolates the `-D` contribution.
    SisgD,
}

impl Variant {
    /// All Table III variants, in the table's row order.
    pub const TABLE_III: [Variant; 5] = [
        Variant::Sgns,
        Variant::SisgF,
        Variant::SisgU,
        Variant::SisgFU,
        Variant::SisgFUD,
    ];

    /// The paper's name of the variant.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Sgns => "SGNS",
            Variant::SisgF => "SISG-F",
            Variant::SisgU => "SISG-U",
            Variant::SisgFU => "SISG-F-U",
            Variant::SisgFUD => "SISG-F-U-D",
            Variant::SisgD => "SISG-D",
        }
    }

    /// The sequence enrichment this variant trains on.
    pub fn enrich_options(self) -> EnrichOptions {
        match self {
            Variant::Sgns | Variant::SisgD => EnrichOptions::NONE,
            Variant::SisgF => EnrichOptions::SI_ONLY,
            Variant::SisgU => EnrichOptions::USER_TYPES_ONLY,
            Variant::SisgFU | Variant::SisgFUD => EnrichOptions::FULL,
        }
    }

    /// The window mode this variant samples pairs with.
    pub fn window_mode(self) -> WindowMode {
        if self.directional() {
            WindowMode::RightOnly
        } else {
            WindowMode::Symmetric
        }
    }

    /// How similarity is computed at retrieval time.
    pub fn similarity_mode(self) -> SimilarityMode {
        if self.directional() {
            SimilarityMode::InputOutput
        } else {
            SimilarityMode::CosineInput
        }
    }

    /// True for the `-D` variants.
    pub fn directional(self) -> bool {
        matches!(self, Variant::SisgFUD | Variant::SisgD)
    }

    /// True when item SI tokens are injected (`-F`).
    pub fn uses_si(self) -> bool {
        self.enrich_options().include_si
    }

    /// True when user-type tokens are injected (`-U`).
    pub fn uses_user_types(self) -> bool {
        self.enrich_options().include_user_types
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_rows_match_paper() {
        let names: Vec<&str> = Variant::TABLE_III.iter().map(|v| v.name()).collect();
        assert_eq!(
            names,
            vec!["SGNS", "SISG-F", "SISG-U", "SISG-F-U", "SISG-F-U-D"]
        );
    }

    #[test]
    fn axes_decompose_correctly() {
        assert!(!Variant::Sgns.uses_si() && !Variant::Sgns.uses_user_types());
        assert!(Variant::SisgF.uses_si() && !Variant::SisgF.uses_user_types());
        assert!(!Variant::SisgU.uses_si() && Variant::SisgU.uses_user_types());
        assert!(Variant::SisgFU.uses_si() && Variant::SisgFU.uses_user_types());
        assert!(Variant::SisgFUD.uses_si() && Variant::SisgFUD.uses_user_types());
        assert!(Variant::SisgFUD.directional());
        assert!(!Variant::SisgFU.directional());
    }

    #[test]
    fn directional_variants_use_asymmetric_similarity() {
        for v in [Variant::SisgFUD, Variant::SisgD] {
            assert_eq!(v.window_mode(), WindowMode::RightOnly);
            assert_eq!(v.similarity_mode(), SimilarityMode::InputOutput);
        }
        for v in [
            Variant::Sgns,
            Variant::SisgF,
            Variant::SisgU,
            Variant::SisgFU,
        ] {
            assert_eq!(v.window_mode(), WindowMode::Symmetric);
            assert_eq!(v.similarity_mode(), SimilarityMode::CosineInput);
        }
    }
}
