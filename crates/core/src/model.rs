//! Training and retrieval for one SISG variant.

use crate::error::CoreError;
use crate::variants::{SimilarityMode, Variant};
use sisg_corpus::vocab::TokenSpace;
use sisg_corpus::{
    Corpus, EnrichedCorpus, GeneratedCorpus, ItemCatalog, ItemId, TokenId, UserRegistry,
};
use sisg_embedding::math::normalize;
use sisg_embedding::{retrieve_top_k, EmbeddingStore, Matrix, Neighbor};
use sisg_sgns::{train_with_freqs, SgnsConfig, TrainStats};

/// Statistics of one SISG training run.
#[derive(Debug, Clone)]
pub struct SisgTrainReport {
    /// The trained variant.
    pub variant: Variant,
    /// Enriched tokens in the training corpus.
    pub tokens: u64,
    /// SGNS trainer counters.
    pub stats: TrainStats,
}

/// A trained SISG model: the joint item/SI/user-type embedding space plus
/// the variant's retrieval rule.
pub struct SisgModel {
    variant: Variant,
    space: TokenSpace,
    store: EmbeddingStore,
    /// Item input vectors, L2-normalized, for cosine retrieval.
    item_norm: Matrix,
    /// Item *output* vectors. Section II-C scores directional similarity
    /// with the raw inner product `v_i^T v'_j`; we keep it raw (the output
    /// norm carries a useful popularity prior — L2-normalizing both sides,
    /// one reading of Section IV-A's "standard cosine similarity", measures
    /// worse at every K on our corpora; see DESIGN.md §6).
    item_out: Matrix,
}

impl std::fmt::Debug for SisgModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SisgModel")
            .field("variant", &self.variant)
            .field("tokens", &self.store.n_tokens())
            .field("dim", &self.store.dim())
            .finish_non_exhaustive()
    }
}

/// Rejects SGNS hyper-parameters that would make training degenerate.
fn validate_sgns(sgns: &SgnsConfig) -> Result<(), CoreError> {
    if sgns.dim == 0 {
        return Err(CoreError::InvalidConfig {
            field: "dim",
            reason: "must be at least 1",
        });
    }
    if sgns.window == 0 {
        return Err(CoreError::InvalidConfig {
            field: "window",
            reason: "must be at least 1",
        });
    }
    if sgns.epochs == 0 {
        return Err(CoreError::InvalidConfig {
            field: "epochs",
            reason: "must be at least 1",
        });
    }
    Ok(())
}

impl SisgModel {
    /// Trains `variant` on the full generated corpus.
    pub fn train(
        corpus: &GeneratedCorpus,
        variant: Variant,
        sgns: &SgnsConfig,
    ) -> Result<(Self, SisgTrainReport), CoreError> {
        Self::train_on_sessions(
            &corpus.sessions,
            &corpus.catalog,
            &corpus.users,
            corpus.config.n_items,
            variant,
            sgns,
        )
    }

    /// Trains `variant` on an explicit session set (e.g. the training part
    /// of a next-item split). Fails on degenerate hyper-parameters instead
    /// of asserting mid-training.
    pub fn train_on_sessions(
        sessions: &Corpus,
        catalog: &ItemCatalog,
        users: &UserRegistry,
        n_items: u32,
        variant: Variant,
        sgns: &SgnsConfig,
    ) -> Result<(Self, SisgTrainReport), CoreError> {
        validate_sgns(sgns)?;
        let enriched = EnrichedCorpus::build_from_sessions(
            sessions,
            catalog,
            users,
            n_items,
            variant.enrich_options(),
        );
        let mut config = sgns.clone();
        config.window_mode = variant.window_mode();
        // Enrichment interleaves SI tokens between items: with 8 SI per item,
        // two *items* that are w clicks apart sit 9·w raw tokens apart. But
        // the trainer applies Mikolov subsampling *before* pair sampling,
        // and the super-frequent SI tokens are exactly what it strips — so
        // the relevant stride is the expected number of tokens per item in
        // the *filtered* sequence, not the raw 9. Scaling by the raw stride
        // overshoots item reach (~60% on the tiny corpus), which measurably
        // dilutes the adjacency signal the directional variant encodes.
        if variant.uses_si() {
            config.window = sgns.window * enriched_stride(&enriched, config.subsample);
        }
        let (store, stats) = train_with_freqs(&enriched, enriched.vocab().freqs(), &config);

        let report = SisgTrainReport {
            variant,
            tokens: enriched.total_tokens(),
            stats,
        };
        let space = enriched.space().clone();
        let model = Self::from_store(variant, space, store)?;
        Ok((model, report))
    }

    /// Wraps a trained (or deserialized) store. Fails when the store does
    /// not cover the token space (or carries zero dimensions).
    pub fn from_store(
        variant: Variant,
        space: TokenSpace,
        store: EmbeddingStore,
    ) -> Result<Self, CoreError> {
        if store.n_tokens() < space.len() {
            return Err(CoreError::StoreSpaceMismatch {
                space_tokens: space.len(),
                store_tokens: store.n_tokens(),
            });
        }
        if store.dim() == 0 {
            return Err(CoreError::InvalidConfig {
                field: "dim",
                reason: "store carries zero dimensions",
            });
        }
        let n_items = space.n_items() as usize;
        let dim = store.dim();
        let mut item_norm = Matrix::zeros(n_items, dim);
        let mut item_out = Matrix::zeros(n_items, dim);
        for i in 0..n_items {
            item_norm
                .row_mut(i)
                .copy_from_slice(store.input(TokenId(i as u32)));
            normalize(item_norm.row_mut(i));
            item_out
                .row_mut(i)
                .copy_from_slice(store.output(TokenId(i as u32)));
        }
        Ok(Self {
            variant,
            space,
            store,
            item_norm,
            item_out,
        })
    }

    /// The trained variant.
    #[inline]
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The token layout of the joint embedding space.
    #[inline]
    pub fn space(&self) -> &TokenSpace {
        &self.space
    }

    /// The raw embedding store (input + output matrices).
    #[inline]
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// Similarity of recommending `b` after `a`, under the variant's rule.
    /// Asymmetric for `-D` variants: `similarity(a, b) ≠ similarity(b, a)`.
    pub fn similarity(&self, a: ItemId, b: ItemId) -> f32 {
        match self.variant.similarity_mode() {
            SimilarityMode::CosineInput => sisg_embedding::math::dot(
                self.item_norm.row(a.index()),
                self.item_norm.row(b.index()),
            ),
            SimilarityMode::InputOutput => sisg_embedding::math::dot(
                self.store.input(self.space.item(a)),
                self.item_out.row(b.index()),
            ),
        }
    }

    /// The `k` best items to show after `query` (`S_K(v)` of Eq. 5).
    pub fn similar_items(&self, query: ItemId, k: usize) -> Vec<Neighbor> {
        match self.variant.similarity_mode() {
            SimilarityMode::CosineInput => {
                let q = self.item_norm.row(query.index());
                retrieve_top_k(
                    q,
                    &self.item_norm,
                    (0..self.space.n_items()).map(TokenId),
                    k,
                    Some(self.space.item(query)),
                )
            }
            SimilarityMode::InputOutput => {
                let q = self.store.input(self.space.item(query));
                retrieve_top_k(
                    q,
                    &self.item_out,
                    (0..self.space.n_items()).map(TokenId),
                    k,
                    Some(self.space.item(query)),
                )
            }
        }
    }

    /// Retrieves the `k` items whose *input* vectors are most cosine-similar
    /// to an arbitrary query vector (used by cold-start inference, where the
    /// query is a sum of SI vectors or an averaged user-type vector).
    pub fn similar_items_to_vector(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        let mut q = query.to_vec();
        normalize(&mut q);
        retrieve_top_k(
            &q,
            &self.item_norm,
            (0..self.space.n_items()).map(TokenId),
            k,
            None,
        )
    }

    /// Re-ranks an explicit candidate set against an arbitrary query
    /// vector with the exact f32 scorer — the re-rank half of the
    /// quantized cold path in `crates/serve`: an in-shard ANN proposes
    /// candidate ids, this restores exact cosine order among them.
    /// Candidate ids index the item matrix (`0..n_items`).
    pub fn rerank_items_to_vector(
        &self,
        query: &[f32],
        candidates: impl Iterator<Item = TokenId>,
        k: usize,
    ) -> Vec<Neighbor> {
        let mut q = query.to_vec();
        normalize(&mut q);
        retrieve_top_k(&q, &self.item_norm, candidates, k, None)
    }

    /// The L2-normalized item input matrix the cosine scorers run over —
    /// the corpus a quantized in-shard index is built from (rows are
    /// unit-norm, so inner product is navigable without augmentation).
    #[inline]
    pub fn item_norm_matrix(&self) -> &Matrix {
        &self.item_norm
    }

    /// The input vector of any token (item, SI instance, or user type) in
    /// the joint space.
    pub fn token_input(&self, token: TokenId) -> &[f32] {
        self.store.input(token)
    }
}

/// Expected number of filtered-sequence tokens per surviving *item*
/// occurrence — the window multiplier that makes item-item co-occurrence
/// reach in an enriched corpus match a plain item-sequence window of the
/// same nominal size.
///
/// Subsampling keeps each occurrence of token `t` with probability
/// `keep(t)`, so the expected filtered length is `Σ_t keep(t)·freq(t)` and
/// the expected surviving item count is the same sum restricted to item
/// tokens. Their ratio is the mean distance (in filtered tokens) between
/// consecutive items. With subsampling disabled this recovers the raw
/// enriched stride (9 for full SI enrichment).
fn enriched_stride(enriched: &EnrichedCorpus, subsample: f64) -> usize {
    let freqs = enriched.vocab().freqs();
    let table = sisg_sgns::SubsampleTable::new(freqs, subsample);
    let n_items = enriched.space().n_items() as usize;
    let mut surviving = 0.0f64;
    let mut surviving_items = 0.0f64;
    for (i, &c) in freqs.iter().enumerate() {
        let s = f64::from(table.keep_prob(TokenId(i as u32))) * c as f64;
        surviving += s;
        if i < n_items {
            surviving_items += s;
        }
    }
    if surviving_items <= 0.0 {
        return 1;
    }
    ((surviving / surviving_items).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisg_corpus::CorpusConfig;

    fn small_sgns() -> SgnsConfig {
        SgnsConfig {
            dim: 16,
            window: 4,
            negatives: 5,
            epochs: 1,
            ..Default::default()
        }
    }

    fn corpus() -> GeneratedCorpus {
        GeneratedCorpus::generate(CorpusConfig::tiny())
    }

    #[test]
    fn all_variants_train() {
        let c = corpus();
        for v in Variant::TABLE_III {
            let (model, report) = SisgModel::train(&c, v, &small_sgns()).expect("train");
            assert!(report.stats.pairs > 0, "{v} trained no pairs");
            assert_eq!(model.variant(), v);
            let hits = model.similar_items(ItemId(0), 5);
            assert_eq!(hits.len(), 5);
            assert!(hits.iter().all(|n| n.token != TokenId(0)));
        }
    }

    #[test]
    fn symmetric_variant_similarity_is_symmetric() {
        let c = corpus();
        let (model, _) = SisgModel::train(&c, Variant::Sgns, &small_sgns()).expect("train");
        let ab = model.similarity(ItemId(1), ItemId(2));
        let ba = model.similarity(ItemId(2), ItemId(1));
        assert!((ab - ba).abs() < 1e-5);
    }

    #[test]
    fn directional_variant_similarity_is_asymmetric() {
        let c = corpus();
        let (model, _) = SisgModel::train(&c, Variant::SisgFUD, &small_sgns()).expect("train");
        // Across many pairs, forward and backward scores must differ.
        let mut diffs = 0;
        for a in 0..20u32 {
            for b in (a + 1)..20u32 {
                let f = model.similarity(ItemId(a), ItemId(b));
                let r = model.similarity(ItemId(b), ItemId(a));
                if (f - r).abs() > 1e-6 {
                    diffs += 1;
                }
            }
        }
        assert!(diffs > 100, "only {diffs} asymmetric pairs");
    }

    #[test]
    fn enriched_variants_see_more_tokens() {
        let c = corpus();
        let (_, plain) = SisgModel::train(&c, Variant::Sgns, &small_sgns()).expect("train");
        let (_, full) = SisgModel::train(&c, Variant::SisgFU, &small_sgns()).expect("train");
        assert!(full.tokens > plain.tokens * 8, "SI must multiply tokens");
    }

    #[test]
    fn same_category_items_cluster() {
        let c = corpus();
        let (model, _) = SisgModel::train(&c, Variant::SisgF, &small_sgns()).expect("train");
        let mut within = 0.0f64;
        let mut cross = 0.0f64;
        let (mut wn, mut cn) = (0u32, 0u32);
        for a in 0..150u32 {
            for b in (a + 1)..150u32 {
                let s = model.similarity(ItemId(a), ItemId(b)) as f64;
                if c.catalog.leaf_category(ItemId(a)) == c.catalog.leaf_category(ItemId(b)) {
                    within += s;
                    wn += 1;
                } else {
                    cross += s;
                    cn += 1;
                }
            }
        }
        assert!(within / wn as f64 > cross / cn as f64 + 0.05);
    }

    #[test]
    fn vector_retrieval_matches_item_retrieval_for_item_vector() {
        let c = corpus();
        let (model, _) = SisgModel::train(&c, Variant::Sgns, &small_sgns()).expect("train");
        let q = model.token_input(TokenId(3)).to_vec();
        let by_vec = model.similar_items_to_vector(&q, 6);
        // The item itself must rank first when not excluded.
        assert_eq!(by_vec[0].token, TokenId(3));
    }
}
