//! The high-level matching-stage API.
//!
//! A [`Recommender`] bundles a trained [`SisgModel`] with the catalogs it
//! was trained against and answers the three production queries the paper
//! describes: similar items for a clicked item (the matching stage proper),
//! cold-item candidates (Eq. 6), and cold-user candidates (Figure 4).

use crate::cold_start;
use crate::error::CoreError;
use crate::model::{SisgModel, SisgTrainReport};
use crate::variants::Variant;
use sisg_corpus::schema::ItemFeature;
use sisg_corpus::{GeneratedCorpus, ItemCatalog, ItemId, UserRegistry};
use sisg_sgns::SgnsConfig;

/// One recommended item with its similarity score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recommendation {
    /// The recommended item.
    pub item: ItemId,
    /// Similarity under the model's retrieval rule.
    pub score: f32,
}

/// The matching-stage recommender.
pub struct Recommender {
    model: SisgModel,
    catalog: ItemCatalog,
    users: UserRegistry,
    report: SisgTrainReport,
}

impl Recommender {
    /// Trains `variant` on `corpus` and wraps the result. Fails on
    /// degenerate hyper-parameters.
    pub fn train(
        corpus: &GeneratedCorpus,
        variant: Variant,
        sgns: &SgnsConfig,
    ) -> Result<Self, CoreError> {
        let (model, report) = SisgModel::train(corpus, variant, sgns)?;
        Ok(Self {
            model,
            catalog: corpus.catalog.clone(),
            users: corpus.users.clone(),
            report,
        })
    }

    /// The underlying model.
    pub fn model(&self) -> &SisgModel {
        &self.model
    }

    /// The training report.
    pub fn report(&self) -> &SisgTrainReport {
        &self.report
    }

    /// Candidate set for a clicked item — the core matching-stage query.
    pub fn similar_items(&self, clicked: ItemId, k: usize) -> Vec<Recommendation> {
        self.model
            .similar_items(clicked, k)
            .into_iter()
            .map(|n| Recommendation {
                item: ItemId(n.token.0),
                score: n.score,
            })
            .collect()
    }

    /// Candidates for a brand-new item known only by its SI values. Fails
    /// on an SI value outside the trained feature cardinality.
    pub fn recommend_for_cold_item(
        &self,
        si_values: &[u32; ItemFeature::COUNT],
        k: usize,
    ) -> Result<Vec<Recommendation>, CoreError> {
        Ok(
            cold_start::cold_item_recommendations(&self.model, si_values, k)?
                .into_iter()
                .map(|n| Recommendation {
                    item: ItemId(n.token.0),
                    score: n.score,
                })
                .collect(),
        )
    }

    /// Candidates for a user with no history, from demographics alone.
    /// Fails with [`CoreError::NoMatchingUserType`] when no realized user
    /// type matches.
    pub fn recommend_for_cold_user(
        &self,
        gender: Option<u8>,
        age: Option<u8>,
        purchase: Option<u8>,
        k: usize,
    ) -> Result<Vec<Recommendation>, CoreError> {
        Ok(cold_start::cold_user_recommendations(
            &self.model,
            &self.users,
            gender,
            age,
            purchase,
            k,
        )?
        .into_iter()
        .map(|n| Recommendation {
            item: ItemId(n.token.0),
            score: n.score,
        })
        .collect())
    }

    /// The item catalog the recommender serves.
    pub fn catalog(&self) -> &ItemCatalog {
        &self.catalog
    }

    /// The user registry the recommender serves.
    pub fn users(&self) -> &UserRegistry {
        &self.users
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisg_corpus::CorpusConfig;

    fn recommender() -> Recommender {
        let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
        let cfg = SgnsConfig {
            dim: 16,
            window: 4,
            negatives: 5,
            epochs: 1,
            ..Default::default()
        };
        Recommender::train(&corpus, Variant::SisgFUD, &cfg).expect("train")
    }

    #[test]
    fn similar_items_returns_k_scored_results() {
        let r = recommender();
        let recs = r.similar_items(ItemId(1), 7);
        assert_eq!(recs.len(), 7);
        assert!(recs.iter().all(|rec| rec.item != ItemId(1)));
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn cold_user_path_works_end_to_end() {
        let r = recommender();
        let recs = r
            .recommend_for_cold_user(Some(0), Some(1), None, 5)
            .expect("matching user type");
        assert_eq!(recs.len(), 5);
    }

    #[test]
    fn cold_item_path_works_end_to_end() {
        let r = recommender();
        let si = *r.catalog().si_values(ItemId(2));
        let recs = r.recommend_for_cold_item(&si, 5).expect("valid SI");
        assert_eq!(recs.len(), 5);
    }
}
