//! The serving side of the matching stage.
//!
//! Production serves precomputed top-K candidate lists: the daily training
//! job materializes, for every item, its K most similar items, and the
//! online system does a key-value lookup per click (this is also how the
//! CF baseline has always been served). [`MatchingService`] is that
//! artifact, with the two cold-start fallbacks of Section IV-C wired in:
//! unknown items fall back to Eq. (6) inference from their SI values, and
//! history-less users to averaged user-type vectors.

use crate::cold_start;
use crate::model::SisgModel;
use crate::recommender::Recommendation;
use sisg_corpus::schema::ItemFeature;
use sisg_corpus::{ItemId, UserRegistry};
use sisg_obs::{names, registry, Counter, Histogram, Stopwatch};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Cached `&'static` obs handles: fetched once, then every request is a
/// handful of relaxed atomic ops (the serving-path overhead budget).
struct ServingMetrics {
    requests: &'static Counter,
    warm_hits: &'static Counter,
    cold_items: &'static Counter,
    cold_users: &'static Counter,
    recommend_us: &'static Histogram,
}

fn serving_metrics() -> &'static ServingMetrics {
    static M: OnceLock<ServingMetrics> = OnceLock::new();
    M.get_or_init(|| ServingMetrics {
        requests: registry().counter(names::SERVING_REQUESTS_TOTAL),
        warm_hits: registry().counter(names::SERVING_WARM_HITS_TOTAL),
        cold_items: registry().counter(names::SERVING_COLD_ITEM_TOTAL),
        cold_users: registry().counter(names::SERVING_COLD_USER_TOTAL),
        recommend_us: registry().histogram(names::SERVING_RECOMMEND_US),
    })
}

/// Build options for the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingConfig {
    /// Candidates precomputed per item.
    pub k: usize,
    /// Items with fewer training clicks than this are marked cold and
    /// served through Eq. (6) instead of their (undertrained) own vector.
    pub min_clicks_for_warm: u64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            k: 50,
            min_clicks_for_warm: 3,
        }
    }
}

/// Counters the serving layer exports.
#[derive(Debug, Default)]
pub struct ServingStats {
    /// Total candidate-list lookups served.
    pub requests: AtomicU64,
    /// Lookups answered from the precomputed lists.
    pub warm_hits: AtomicU64,
    /// Lookups answered through the Eq. (6) cold path.
    pub cold_item_requests: AtomicU64,
    /// Cold-user requests served.
    pub cold_user_requests: AtomicU64,
}

/// The precomputed matching-stage artifact.
pub struct MatchingService {
    config: ServingConfig,
    /// `lists[item]` = top-K candidates, empty for cold items.
    lists: Vec<Vec<Recommendation>>,
    /// Cold flags per item.
    cold: Vec<bool>,
    model: SisgModel,
    users: UserRegistry,
    stats: ServingStats,
}

impl MatchingService {
    /// Materializes top-`k` lists for every warm item. `item_clicks` are
    /// training-corpus click counts (for the cold threshold).
    pub fn build(
        model: SisgModel,
        users: UserRegistry,
        item_clicks: &[u64],
        config: ServingConfig,
    ) -> Self {
        let n_items = model.space().n_items() as usize;
        assert_eq!(item_clicks.len(), n_items, "click counts must cover items");
        let mut lists = Vec::with_capacity(n_items);
        let mut cold = Vec::with_capacity(n_items);
        for (i, &clicks) in item_clicks.iter().enumerate() {
            let is_cold = clicks < config.min_clicks_for_warm;
            cold.push(is_cold);
            if is_cold {
                lists.push(Vec::new());
            } else {
                lists.push(
                    model
                        .similar_items(ItemId(i as u32), config.k)
                        .into_iter()
                        .map(|n| Recommendation {
                            item: ItemId(n.token.0),
                            score: n.score,
                        })
                        .collect(),
                );
            }
        }
        Self {
            config,
            lists,
            cold,
            model,
            users,
            stats: ServingStats::default(),
        }
    }

    /// Serves the candidate list for a clicked item. Warm items answer from
    /// the precomputed artifact; cold items go through Eq. (6) using the
    /// catalog SI provided by the caller.
    pub fn candidates(
        &self,
        item: ItemId,
        si_values: &[u32; ItemFeature::COUNT],
        k: usize,
    ) -> Vec<Recommendation> {
        let m = serving_metrics();
        let watch = Stopwatch::start();
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        m.requests.inc();
        if !self.cold[item.index()] {
            self.stats.warm_hits.fetch_add(1, Ordering::Relaxed);
            m.warm_hits.inc();
            let list = &self.lists[item.index()];
            let out = list[..k.min(list.len())].to_vec();
            m.recommend_us.record_duration(watch.elapsed());
            return out;
        }
        self.stats
            .cold_item_requests
            .fetch_add(1, Ordering::Relaxed);
        m.cold_items.inc();
        let out: Vec<Recommendation> =
            cold_start::cold_item_recommendations(&self.model, si_values, k + 1)
                .into_iter()
                .map(|n| Recommendation {
                    item: ItemId(n.token.0),
                    score: n.score,
                })
                .filter(|r| r.item != item)
                .take(k)
                .collect();
        m.recommend_us.record_duration(watch.elapsed());
        out
    }

    /// Serves a cold-user request from demographics.
    pub fn cold_user_candidates(
        &self,
        gender: Option<u8>,
        age: Option<u8>,
        purchase: Option<u8>,
        k: usize,
    ) -> Option<Vec<Recommendation>> {
        let m = serving_metrics();
        let watch = Stopwatch::start();
        self.stats
            .cold_user_requests
            .fetch_add(1, Ordering::Relaxed);
        m.cold_users.inc();
        let out = cold_start::cold_user_recommendations(
            &self.model,
            &self.users,
            gender,
            age,
            purchase,
            k,
        )
        .map(|hits| {
            hits.into_iter()
                .map(|n| Recommendation {
                    item: ItemId(n.token.0),
                    score: n.score,
                })
                .collect()
        });
        m.recommend_us.record_duration(watch.elapsed());
        out
    }

    /// True when `item` is served through the cold path.
    pub fn is_cold(&self, item: ItemId) -> bool {
        self.cold[item.index()]
    }

    /// Fraction of the catalog served cold.
    pub fn cold_fraction(&self) -> f64 {
        if self.cold.is_empty() {
            return 0.0;
        }
        self.cold.iter().filter(|&&c| c).count() as f64 / self.cold.len() as f64
    }

    /// The service counters.
    pub fn stats(&self) -> &ServingStats {
        &self.stats
    }

    /// The build configuration.
    pub fn config(&self) -> ServingConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::Variant;
    use sisg_corpus::{CorpusConfig, GeneratedCorpus};
    use sisg_sgns::SgnsConfig;

    fn service() -> (GeneratedCorpus, MatchingService) {
        let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
        let (model, _) = SisgModel::train(
            &corpus,
            Variant::SisgFU,
            &SgnsConfig {
                dim: 16,
                window: 3,
                negatives: 3,
                epochs: 1,
                ..Default::default()
            },
        );
        let mut clicks = vec![0u64; corpus.config.n_items as usize];
        for s in corpus.sessions.iter() {
            for it in s.items {
                clicks[it.index()] += 1;
            }
        }
        let svc = MatchingService::build(
            model,
            corpus.users.clone(),
            &clicks,
            ServingConfig {
                k: 20,
                min_clicks_for_warm: 3,
            },
        );
        (corpus, svc)
    }

    #[test]
    fn warm_items_serve_precomputed_lists() {
        let (corpus, svc) = service();
        // Find a definitely-warm item (popular).
        let warm = (0..corpus.config.n_items)
            .map(ItemId)
            .find(|&i| !svc.is_cold(i))
            .expect("some warm item");
        let si = *corpus.catalog.si_values(warm);
        let recs = svc.candidates(warm, &si, 10);
        assert_eq!(recs.len(), 10);
        assert!(recs.iter().all(|r| r.item != warm));
        assert_eq!(svc.stats().warm_hits.load(Ordering::Relaxed), 1);
        assert_eq!(svc.stats().cold_item_requests.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn cold_items_fall_back_to_si_inference() {
        let (corpus, svc) = service();
        let Some(cold) = (0..corpus.config.n_items)
            .map(ItemId)
            .find(|&i| svc.is_cold(i))
        else {
            // With a denser corpus no item is cold; nothing to test.
            return;
        };
        let si = *corpus.catalog.si_values(cold);
        let recs = svc.candidates(cold, &si, 10);
        assert!(!recs.is_empty());
        assert!(recs.iter().all(|r| r.item != cold));
        assert_eq!(svc.stats().cold_item_requests.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cold_fraction_is_consistent() {
        let (corpus, svc) = service();
        let manual = (0..corpus.config.n_items)
            .map(ItemId)
            .filter(|&i| svc.is_cold(i))
            .count() as f64
            / corpus.config.n_items as f64;
        assert!((svc.cold_fraction() - manual).abs() < 1e-12);
    }

    #[test]
    fn cold_user_path_counts_requests() {
        let (_, svc) = service();
        let recs = svc.cold_user_candidates(Some(0), None, None, 5);
        assert!(recs.is_some());
        assert_eq!(svc.stats().cold_user_requests.load(Ordering::Relaxed), 1);
    }
}
