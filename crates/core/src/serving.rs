//! The serving side of the matching stage.
//!
//! Production serves precomputed top-K candidate lists: the daily training
//! job materializes, for every item, its K most similar items, and the
//! online system does a key-value lookup per click (this is also how the
//! CF baseline has always been served). [`MatchingService`] is that
//! artifact, with the two cold-start fallbacks of Section IV-C wired in:
//! unknown items fall back to Eq. (6) inference from their SI values, and
//! history-less users to averaged user-type vectors.
//!
//! Every query path returns `Result`: unknown item ids, out-of-range SI
//! values, and unmatched demographics come back as [`CoreError`] values,
//! never panics. Request accounting lives in the obs registry — the single
//! source of truth — and [`MatchingService::stats`] reads registry deltas
//! since the service was built (see [`ServingStats`] for the caveat on
//! multiple concurrent services).

use crate::cold_start;
use crate::error::CoreError;
use crate::model::SisgModel;
use crate::recommender::Recommendation;
use sisg_corpus::schema::ItemFeature;
use sisg_corpus::{ItemId, UserRegistry};
use sisg_obs::{names, registry, Counter, Histogram, Stopwatch};
use std::sync::OnceLock;

/// Cached `&'static` obs handles: fetched once, then every request is a
/// handful of relaxed atomic ops (the serving-path overhead budget).
struct ServingMetrics {
    requests: &'static Counter,
    warm_hits: &'static Counter,
    cold_items: &'static Counter,
    cold_users: &'static Counter,
    recommend_us: &'static Histogram,
}

fn serving_metrics() -> &'static ServingMetrics {
    static M: OnceLock<ServingMetrics> = OnceLock::new();
    M.get_or_init(|| ServingMetrics {
        requests: registry().counter(names::SERVING_REQUESTS_TOTAL),
        warm_hits: registry().counter(names::SERVING_WARM_HITS_TOTAL),
        cold_items: registry().counter(names::SERVING_COLD_ITEM_TOTAL),
        cold_users: registry().counter(names::SERVING_COLD_USER_TOTAL),
        recommend_us: registry().histogram(names::SERVING_RECOMMEND_US),
    })
}

/// Build options for the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingConfig {
    /// Candidates precomputed per item. Must be at least 1.
    pub k: usize,
    /// Items with fewer training clicks than this are marked cold and
    /// served through Eq. (6) instead of their (undertrained) own vector.
    pub min_clicks_for_warm: u64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            k: 50,
            min_clicks_for_warm: 3,
        }
    }
}

impl ServingConfig {
    /// Starts a validated builder (defaults: `k = 50`,
    /// `min_clicks_for_warm = 3`).
    pub fn builder() -> ServingConfigBuilder {
        ServingConfigBuilder {
            config: Self::default(),
        }
    }

    /// Validates the configuration; [`MatchingService::build`] calls this,
    /// so a hand-rolled struct literal gets the same checks as the builder.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.k == 0 {
            return Err(CoreError::InvalidConfig {
                field: "k",
                reason: "must be at least 1",
            });
        }
        Ok(())
    }
}

/// Builder for [`ServingConfig`] — rejects invalid configurations at build
/// time instead of asserting mid-request.
#[derive(Debug, Clone)]
pub struct ServingConfigBuilder {
    config: ServingConfig,
}

impl ServingConfigBuilder {
    /// Candidates precomputed per item.
    pub fn k(mut self, k: usize) -> Self {
        self.config.k = k;
        self
    }

    /// Cold threshold: items with fewer training clicks are served through
    /// Eq. (6).
    pub fn min_clicks_for_warm(mut self, min_clicks: u64) -> Self {
        self.config.min_clicks_for_warm = min_clicks;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<ServingConfig, CoreError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// A point-in-time snapshot of the serving counters, read from the obs
/// registry (the single source of truth) as deltas since the service was
/// built.
///
/// The registry counters are process-global: when several services serve
/// concurrently (or tests run in parallel in one binary), each service's
/// snapshot includes traffic on the *other* services since this one's
/// build. Per-request attribution belongs to the registry's own snapshot
/// machinery; this struct exists for single-service deployments and
/// coarse-grained monitoring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Total candidate-list lookups served.
    pub requests: u64,
    /// Lookups answered from the precomputed lists.
    pub warm_hits: u64,
    /// Lookups answered through the Eq. (6) cold path.
    pub cold_item_requests: u64,
    /// Cold-user requests served.
    pub cold_user_requests: u64,
}

impl ServingStats {
    /// Reads the current registry totals.
    fn now() -> Self {
        let m = serving_metrics();
        Self {
            requests: m.requests.get(),
            warm_hits: m.warm_hits.get(),
            cold_item_requests: m.cold_items.get(),
            cold_user_requests: m.cold_users.get(),
        }
    }

    /// Component-wise saturating difference.
    fn since(self, baseline: Self) -> Self {
        Self {
            requests: self.requests.saturating_sub(baseline.requests),
            warm_hits: self.warm_hits.saturating_sub(baseline.warm_hits),
            cold_item_requests: self
                .cold_item_requests
                .saturating_sub(baseline.cold_item_requests),
            cold_user_requests: self
                .cold_user_requests
                .saturating_sub(baseline.cold_user_requests),
        }
    }
}

/// The precomputed matching-stage artifact.
pub struct MatchingService {
    config: ServingConfig,
    /// `lists[item]` = top-K candidates, empty for cold items.
    lists: Vec<Vec<Recommendation>>,
    /// Cold flags per item.
    cold: Vec<bool>,
    model: SisgModel,
    users: UserRegistry,
    /// Registry counter values at build time; `stats()` subtracts these.
    baseline: ServingStats,
}

impl std::fmt::Debug for MatchingService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatchingService")
            .field("config", &self.config)
            .field("n_items", &self.cold.len())
            .field("cold_fraction", &self.cold_fraction())
            .finish_non_exhaustive()
    }
}

impl MatchingService {
    /// Materializes top-`k` lists for every warm item. `item_clicks` are
    /// training-corpus click counts (for the cold threshold). Fails when
    /// the click counts do not cover the item catalog or the config is
    /// invalid.
    pub fn build(
        model: SisgModel,
        users: UserRegistry,
        item_clicks: &[u64],
        config: ServingConfig,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        let n_items = model.space().n_items() as usize;
        if item_clicks.len() != n_items {
            return Err(CoreError::ClickCountMismatch {
                items: n_items,
                clicks: item_clicks.len(),
            });
        }
        let mut lists = Vec::with_capacity(n_items);
        let mut cold = Vec::with_capacity(n_items);
        for (i, &clicks) in item_clicks.iter().enumerate() {
            let is_cold = clicks < config.min_clicks_for_warm;
            cold.push(is_cold);
            if is_cold {
                lists.push(Vec::new());
            } else {
                lists.push(
                    model
                        .similar_items(ItemId(i as u32), config.k)
                        .into_iter()
                        .map(|n| Recommendation {
                            item: ItemId(n.token.0),
                            score: n.score,
                        })
                        .collect(),
                );
            }
        }
        Ok(Self {
            config,
            lists,
            cold,
            model,
            users,
            baseline: ServingStats::now(),
        })
    }

    /// Serves the candidate list for a clicked item. Warm items answer from
    /// the precomputed artifact; cold items go through Eq. (6) using the
    /// catalog SI provided by the caller. Fails on an item outside the
    /// trained catalog or an out-of-range SI value.
    pub fn candidates(
        &self,
        item: ItemId,
        si_values: &[u32; ItemFeature::COUNT],
        k: usize,
    ) -> Result<Vec<Recommendation>, CoreError> {
        if self.model.space().try_item(item).is_none() {
            return Err(CoreError::UnknownItem(item));
        }
        let m = serving_metrics();
        let watch = Stopwatch::start();
        m.requests.inc();
        if !self.cold[item.index()] {
            m.warm_hits.inc();
            let list = &self.lists[item.index()];
            let out = list[..k.min(list.len())].to_vec();
            m.recommend_us.record_duration(watch.elapsed());
            return Ok(out);
        }
        m.cold_items.inc();
        let out: Vec<Recommendation> =
            cold_start::cold_item_recommendations(&self.model, si_values, k + 1)?
                .into_iter()
                .map(|n| Recommendation {
                    item: ItemId(n.token.0),
                    score: n.score,
                })
                .filter(|r| r.item != item)
                .take(k)
                .collect();
        m.recommend_us.record_duration(watch.elapsed());
        Ok(out)
    }

    /// Serves a cold-user request from demographics. Fails with
    /// [`CoreError::NoMatchingUserType`] when no realized user type matches.
    pub fn cold_user_candidates(
        &self,
        gender: Option<u8>,
        age: Option<u8>,
        purchase: Option<u8>,
        k: usize,
    ) -> Result<Vec<Recommendation>, CoreError> {
        let m = serving_metrics();
        let watch = Stopwatch::start();
        m.cold_users.inc();
        let out = cold_start::cold_user_recommendations(
            &self.model,
            &self.users,
            gender,
            age,
            purchase,
            k,
        )?
        .into_iter()
        .map(|n| Recommendation {
            item: ItemId(n.token.0),
            score: n.score,
        })
        .collect();
        m.recommend_us.record_duration(watch.elapsed());
        Ok(out)
    }

    /// True when `item` is served through the cold path.
    pub fn is_cold(&self, item: ItemId) -> bool {
        self.cold[item.index()]
    }

    /// Fraction of the catalog served cold.
    pub fn cold_fraction(&self) -> f64 {
        if self.cold.is_empty() {
            return 0.0;
        }
        self.cold.iter().filter(|&&c| c).count() as f64 / self.cold.len() as f64
    }

    /// The precomputed list for a warm item; `None` for cold or unknown
    /// items. Gives a sharding layer zero-copy access to the artifact.
    pub fn warm_list(&self, item: ItemId) -> Option<&[Recommendation]> {
        let idx = item.index();
        if idx >= self.cold.len() || self.cold[idx] {
            return None;
        }
        Some(&self.lists[idx])
    }

    /// The model the service answers from.
    pub fn model(&self) -> &SisgModel {
        &self.model
    }

    /// The user registry for cold-user matching.
    pub fn users(&self) -> &UserRegistry {
        &self.users
    }

    /// Items in the served catalog.
    pub fn n_items(&self) -> usize {
        self.cold.len()
    }

    /// The service counters: obs-registry totals since this service was
    /// built. See [`ServingStats`] for the multi-service caveat.
    pub fn stats(&self) -> ServingStats {
        ServingStats::now().since(self.baseline)
    }

    /// The build configuration.
    pub fn config(&self) -> ServingConfig {
        self.config
    }

    /// Decomposes the artifact for layers that reshard the precomputed
    /// lists (e.g. the `sisg-serve` engine). The lists are moved out
    /// verbatim, so a resharding consumer answers bit-identically to this
    /// service by construction.
    pub fn into_parts(self) -> MatchingParts {
        MatchingParts {
            config: self.config,
            lists: self.lists,
            cold: self.cold,
            model: self.model,
            users: self.users,
        }
    }
}

/// The owned fields of a decomposed [`MatchingService`].
pub struct MatchingParts {
    /// The build configuration.
    pub config: ServingConfig,
    /// `lists[item]` = top-K candidates, empty for cold items.
    pub lists: Vec<Vec<Recommendation>>,
    /// Cold flags per item.
    pub cold: Vec<bool>,
    /// The model the service answers from.
    pub model: SisgModel,
    /// The user registry for cold-user matching.
    pub users: UserRegistry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::Variant;
    use sisg_corpus::{CorpusConfig, GeneratedCorpus};
    use sisg_sgns::SgnsConfig;
    use std::sync::Mutex;

    /// The registry counters are process-global, so serving tests serialize
    /// on this lock to assert exact deltas.
    static STATS_LOCK: Mutex<()> = Mutex::new(());

    fn service() -> (GeneratedCorpus, MatchingService) {
        let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
        let (model, _) = SisgModel::train(
            &corpus,
            Variant::SisgFU,
            &SgnsConfig {
                dim: 16,
                window: 3,
                negatives: 3,
                epochs: 1,
                ..Default::default()
            },
        )
        .expect("train");
        let mut clicks = vec![0u64; corpus.config.n_items as usize];
        for s in corpus.sessions.iter() {
            for it in s.items {
                clicks[it.index()] += 1;
            }
        }
        let svc = MatchingService::build(
            model,
            corpus.users.clone(),
            &clicks,
            ServingConfig {
                k: 20,
                min_clicks_for_warm: 3,
            },
        )
        .expect("build");
        (corpus, svc)
    }

    #[test]
    fn warm_items_serve_precomputed_lists() {
        let _guard = STATS_LOCK.lock().unwrap();
        let (corpus, svc) = service();
        // Find a definitely-warm item (popular).
        let warm = (0..corpus.config.n_items)
            .map(ItemId)
            .find(|&i| !svc.is_cold(i))
            .expect("some warm item");
        let si = *corpus.catalog.si_values(warm);
        let recs = svc.candidates(warm, &si, 10).expect("known item");
        assert_eq!(recs.len(), 10);
        assert!(recs.iter().all(|r| r.item != warm));
        assert_eq!(svc.stats().warm_hits, 1);
        assert_eq!(svc.stats().cold_item_requests, 0);
    }

    #[test]
    fn cold_items_fall_back_to_si_inference() {
        let _guard = STATS_LOCK.lock().unwrap();
        let (corpus, svc) = service();
        let Some(cold) = (0..corpus.config.n_items)
            .map(ItemId)
            .find(|&i| svc.is_cold(i))
        else {
            // With a denser corpus no item is cold; nothing to test.
            return;
        };
        let si = *corpus.catalog.si_values(cold);
        let recs = svc.candidates(cold, &si, 10).expect("known item");
        assert!(!recs.is_empty());
        assert!(recs.iter().all(|r| r.item != cold));
        assert_eq!(svc.stats().cold_item_requests, 1);
    }

    #[test]
    fn cold_fraction_is_consistent() {
        let (corpus, svc) = service();
        let manual = (0..corpus.config.n_items)
            .map(ItemId)
            .filter(|&i| svc.is_cold(i))
            .count() as f64
            / corpus.config.n_items as f64;
        assert!((svc.cold_fraction() - manual).abs() < 1e-12);
    }

    #[test]
    fn cold_user_path_counts_requests() {
        let _guard = STATS_LOCK.lock().unwrap();
        let (_, svc) = service();
        let recs = svc.cold_user_candidates(Some(0), None, None, 5);
        assert!(recs.is_ok());
        assert_eq!(svc.stats().cold_user_requests, 1);
    }

    #[test]
    fn unknown_item_is_a_typed_error() {
        let (_, svc) = service();
        let bogus = ItemId(u32::MAX);
        let err = svc
            .candidates(bogus, &[0; ItemFeature::COUNT], 5)
            .unwrap_err();
        assert_eq!(err, CoreError::UnknownItem(bogus));
    }

    #[test]
    fn warm_list_covers_exactly_the_warm_items() {
        let (corpus, svc) = service();
        for i in 0..corpus.config.n_items {
            let item = ItemId(i);
            assert_eq!(svc.warm_list(item).is_some(), !svc.is_cold(item));
        }
        assert!(svc.warm_list(ItemId(u32::MAX)).is_none());
    }

    #[test]
    fn builder_rejects_zero_k() {
        let err = ServingConfig::builder().k(0).build().unwrap_err();
        assert_eq!(
            err,
            CoreError::InvalidConfig {
                field: "k",
                reason: "must be at least 1",
            }
        );
        let ok = ServingConfig::builder()
            .k(10)
            .min_clicks_for_warm(5)
            .build()
            .expect("valid");
        assert_eq!(ok.k, 10);
        assert_eq!(ok.min_clicks_for_warm, 5);
    }

    #[test]
    fn build_rejects_short_click_counts() {
        let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
        let (model, _) = SisgModel::train(
            &corpus,
            Variant::Sgns,
            &SgnsConfig {
                dim: 8,
                window: 2,
                negatives: 2,
                epochs: 1,
                ..Default::default()
            },
        )
        .expect("train");
        let err = MatchingService::build(
            model,
            corpus.users.clone(),
            &[1, 2, 3],
            ServingConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::ClickCountMismatch { clicks: 3, .. }
        ));
    }
}
