//! Cold-start inference — Section IV-C of the paper.
//!
//! *Cold items* (Eq. 6): a new item with no interactions gets the vector
//! `v = Σ_k SI_k(v)`, the sum of the input vectors of its SI values; its
//! candidate set is whatever is nearest to that vector.
//!
//! *Cold users* (Figure 4): a user with no history but known demographics
//! gets the average of all user-type vectors matching those demographics;
//! items near that average are recommended.

use crate::model::SisgModel;
use sisg_corpus::schema::ItemFeature;
use sisg_corpus::{UserRegistry, UserTypeId};
use sisg_embedding::math::{add_assign, scale};
use sisg_embedding::Neighbor;

/// Eq. (6): the inferred embedding of an item from its SI values alone.
pub fn cold_item_vector(model: &SisgModel, si_values: &[u32; ItemFeature::COUNT]) -> Vec<f32> {
    let mut v = vec![0.0f32; model.store().dim()];
    for feature in ItemFeature::ALL {
        let token = model.space().side_info(feature, si_values[feature.slot()]);
        add_assign(&mut v, model.token_input(token));
    }
    v
}

/// Top-`k` recommendations for a cold item, via Eq. (6).
pub fn cold_item_recommendations(
    model: &SisgModel,
    si_values: &[u32; ItemFeature::COUNT],
    k: usize,
) -> Vec<Neighbor> {
    let v = cold_item_vector(model, si_values);
    model.similar_items_to_vector(&v, k)
}

/// The averaged user-type vector for a demographic group; `None` when no
/// realized user type matches.
pub fn cold_user_vector(
    model: &SisgModel,
    users: &UserRegistry,
    gender: Option<u8>,
    age: Option<u8>,
    purchase: Option<u8>,
) -> Option<Vec<f32>> {
    let types = users.types_matching(gender, age, purchase);
    if types.is_empty() {
        return None;
    }
    Some(average_user_types(model, &types))
}

/// The average of specific user-type input vectors.
pub fn average_user_types(model: &SisgModel, types: &[UserTypeId]) -> Vec<f32> {
    let mut v = vec![0.0f32; model.store().dim()];
    for &ut in types {
        add_assign(&mut v, model.token_input(model.space().user_type(ut)));
    }
    scale(&mut v, 1.0 / types.len() as f32);
    v
}

/// Top-`k` recommendations for a cold user described only by demographics;
/// `None` when no realized user type matches the query.
pub fn cold_user_recommendations(
    model: &SisgModel,
    users: &UserRegistry,
    gender: Option<u8>,
    age: Option<u8>,
    purchase: Option<u8>,
    k: usize,
) -> Option<Vec<Neighbor>> {
    cold_user_vector(model, users, gender, age, purchase)
        .map(|v| model.similar_items_to_vector(&v, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::Variant;
    use sisg_corpus::{CorpusConfig, GeneratedCorpus, ItemId};
    use sisg_sgns::SgnsConfig;

    fn trained() -> (GeneratedCorpus, SisgModel) {
        let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
        let cfg = SgnsConfig {
            dim: 16,
            window: 4,
            negatives: 5,
            epochs: 2,
            ..Default::default()
        };
        let (model, _) = SisgModel::train(&corpus, Variant::SisgFU, &cfg);
        (corpus, model)
    }

    #[test]
    fn cold_item_lands_near_its_category() {
        let (corpus, model) = trained();
        // Use an existing item's SI as a stand-in for a new item.
        let probe = ItemId(10);
        let si = *corpus.catalog.si_values(probe);
        let recs = cold_item_recommendations(&model, &si, 20);
        assert_eq!(recs.len(), 20);
        // A solid share of recommendations should share the probe's leaf
        // category (SI dominates the inferred vector).
        let same_cat = recs
            .iter()
            .filter(|n| {
                corpus.catalog.leaf_category(ItemId(n.token.0))
                    == corpus.catalog.leaf_category(probe)
            })
            .count();
        assert!(
            same_cat >= 5,
            "only {same_cat}/20 recommendations share the category"
        );
    }

    #[test]
    fn cold_user_vector_requires_matching_types() {
        let (corpus, model) = trained();
        assert!(cold_user_vector(&model, &corpus.users, Some(0), None, None).is_some());
        // Gender index 9 does not exist.
        assert!(cold_user_vector(&model, &corpus.users, Some(9), None, None).is_none());
    }

    #[test]
    fn different_demographics_get_different_recommendations() {
        let (corpus, model) = trained();
        let female =
            cold_user_recommendations(&model, &corpus.users, Some(0), None, None, 30).unwrap();
        let male =
            cold_user_recommendations(&model, &corpus.users, Some(1), None, None, 30).unwrap();
        let f: std::collections::HashSet<u32> = female.iter().map(|n| n.token.0).collect();
        let m: std::collections::HashSet<u32> = male.iter().map(|n| n.token.0).collect();
        let overlap = f.intersection(&m).count();
        assert!(
            overlap < 30,
            "female and male cold-start lists must differ, overlap {overlap}"
        );
    }

    #[test]
    fn averaging_single_type_is_identity() {
        let (corpus, model) = trained();
        let ut = corpus.users.user_type(sisg_corpus::UserId(0));
        let avg = average_user_types(&model, &[ut]);
        assert_eq!(avg, model.token_input(model.space().user_type(ut)).to_vec());
    }
}
