//! Cold-start inference — Section IV-C of the paper.
//!
//! *Cold items* (Eq. 6): a new item with no interactions gets the vector
//! `v = Σ_k SI_k(v)`, the sum of the input vectors of its SI values; its
//! candidate set is whatever is nearest to that vector.
//!
//! *Cold users* (Figure 4): a user with no history but known demographics
//! gets the average of all user-type vectors matching those demographics;
//! items near that average are recommended.
//!
//! Every entry point validates its token references against the model's
//! [`TokenSpace`](sisg_corpus::vocab::TokenSpace) and returns a typed
//! [`CoreError`] for out-of-range SI values or unmatched demographics, so
//! the serving layer can turn a malformed request into a client error
//! instead of a panic.

use crate::error::CoreError;
use crate::model::SisgModel;
use sisg_corpus::schema::ItemFeature;
use sisg_corpus::{UserRegistry, UserTypeId};
use sisg_embedding::math::{add_assign, scale};
use sisg_embedding::Neighbor;

/// How the SI token vectors of a cold item are aggregated into its
/// inferred embedding.
///
/// The paper's SISG formulation (Eq. 6) is a plain sum. EGES (Wang et
/// al., "Billion-scale Commodity Embedding for E-commerce Recommendation
/// in Alibaba") instead learns per-item attention over the SI slots and
/// aggregates with a weighted average, on the observation that features
/// contribute unequally — a brand says more about a flagship phone than
/// its shipping bucket does. SISG has no learned attention, so
/// [`SiAggregation::Weighted`] uses the training signal the model *does*
/// carry: each SI token's input-vector norm. Tokens that absorbed more
/// gradient (frequent, discriminative features) grow longer vectors, so
/// norm-proportional weights are a training-derived stand-in for the
/// EGES attention — and dot-product ranking is invariant to positive
/// scaling of the query, so the weighted *average* ranks directly
/// against the item matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SiAggregation {
    /// Plain SISG sum of the SI token vectors (Eq. 6 verbatim).
    #[default]
    Sum,
    /// EGES-style weighted average, each SI token weighted by its
    /// input-vector norm (see the type-level docs for why norms stand in
    /// for the learned EGES attention).
    Weighted,
}

/// Eq. (6): the inferred embedding of an item from its SI values alone.
/// Fails with [`CoreError::SiValueOutOfRange`] when a value exceeds the
/// trained feature cardinality.
pub fn cold_item_vector(
    model: &SisgModel,
    si_values: &[u32; ItemFeature::COUNT],
) -> Result<Vec<f32>, CoreError> {
    cold_item_vector_with(model, si_values, SiAggregation::Sum)
}

/// The inferred cold-item embedding under an explicit [`SiAggregation`]
/// mode — the per-tenant SI-weighting knob of the serving tier.
pub fn cold_item_vector_with(
    model: &SisgModel,
    si_values: &[u32; ItemFeature::COUNT],
    aggregation: SiAggregation,
) -> Result<Vec<f32>, CoreError> {
    let mut v = vec![0.0f32; model.store().dim()];
    let mut norm_sum = 0.0f32;
    for feature in ItemFeature::ALL {
        let value = si_values[feature.slot()];
        let token =
            model
                .space()
                .try_side_info(feature, value)
                .ok_or(CoreError::SiValueOutOfRange {
                    feature,
                    value,
                    cardinality: model.space().si_cardinality(feature),
                })?;
        let row = model.token_input(token);
        match aggregation {
            SiAggregation::Sum => add_assign(&mut v, row),
            SiAggregation::Weighted => {
                let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
                norm_sum += norm;
                for (acc, &x) in v.iter_mut().zip(row) {
                    *acc += norm * x;
                }
            }
        }
    }
    if aggregation == SiAggregation::Weighted && norm_sum > 0.0 {
        scale(&mut v, 1.0 / norm_sum);
    }
    Ok(v)
}

/// Top-`k` recommendations for a cold item, via Eq. (6).
pub fn cold_item_recommendations(
    model: &SisgModel,
    si_values: &[u32; ItemFeature::COUNT],
    k: usize,
) -> Result<Vec<Neighbor>, CoreError> {
    let v = cold_item_vector(model, si_values)?;
    Ok(model.similar_items_to_vector(&v, k))
}

/// The averaged user-type vector for a demographic group. Fails with
/// [`CoreError::NoMatchingUserType`] when no realized user type matches.
pub fn cold_user_vector(
    model: &SisgModel,
    users: &UserRegistry,
    gender: Option<u8>,
    age: Option<u8>,
    purchase: Option<u8>,
) -> Result<Vec<f32>, CoreError> {
    let types = users.types_matching(gender, age, purchase);
    average_user_types(model, &types)
}

/// The average of specific user-type input vectors. Fails on an empty type
/// set ([`CoreError::NoMatchingUserType`]) and on a type id outside the
/// trained registry ([`CoreError::UnknownUserType`]).
pub fn average_user_types(model: &SisgModel, types: &[UserTypeId]) -> Result<Vec<f32>, CoreError> {
    if types.is_empty() {
        return Err(CoreError::NoMatchingUserType);
    }
    let mut v = vec![0.0f32; model.store().dim()];
    for &ut in types {
        let token = model
            .space()
            .try_user_type(ut)
            .ok_or(CoreError::UnknownUserType(ut))?;
        add_assign(&mut v, model.token_input(token));
    }
    scale(&mut v, 1.0 / types.len() as f32);
    Ok(v)
}

/// Top-`k` recommendations for a cold user described only by demographics.
/// Fails with [`CoreError::NoMatchingUserType`] when no realized user type
/// matches the query.
pub fn cold_user_recommendations(
    model: &SisgModel,
    users: &UserRegistry,
    gender: Option<u8>,
    age: Option<u8>,
    purchase: Option<u8>,
    k: usize,
) -> Result<Vec<Neighbor>, CoreError> {
    let v = cold_user_vector(model, users, gender, age, purchase)?;
    Ok(model.similar_items_to_vector(&v, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::Variant;
    use sisg_corpus::{CorpusConfig, GeneratedCorpus, ItemId};
    use sisg_sgns::SgnsConfig;

    fn trained() -> (GeneratedCorpus, SisgModel) {
        let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
        let cfg = SgnsConfig {
            dim: 16,
            window: 4,
            negatives: 5,
            epochs: 2,
            ..Default::default()
        };
        let (model, _) = SisgModel::train(&corpus, Variant::SisgFU, &cfg).expect("train");
        (corpus, model)
    }

    #[test]
    fn cold_item_lands_near_its_category() {
        let (corpus, model) = trained();
        // Use an existing item's SI as a stand-in for a new item.
        let probe = ItemId(10);
        let si = *corpus.catalog.si_values(probe);
        let recs = cold_item_recommendations(&model, &si, 20).expect("valid SI");
        assert_eq!(recs.len(), 20);
        // A solid share of recommendations should share the probe's leaf
        // category (SI dominates the inferred vector).
        let same_cat = recs
            .iter()
            .filter(|n| {
                corpus.catalog.leaf_category(ItemId(n.token.0))
                    == corpus.catalog.leaf_category(probe)
            })
            .count();
        assert!(
            same_cat >= 5,
            "only {same_cat}/20 recommendations share the category"
        );
    }

    #[test]
    fn weighted_aggregation_is_a_norm_weighted_average_of_the_sum_terms() {
        let (corpus, model) = trained();
        let si = *corpus.catalog.si_values(ItemId(3));
        let sum = cold_item_vector_with(&model, &si, SiAggregation::Sum).expect("sum");
        let weighted =
            cold_item_vector_with(&model, &si, SiAggregation::Weighted).expect("weighted");
        assert_eq!(
            sum,
            cold_item_vector(&model, &si).expect("default"),
            "Sum must be the Eq. 6 default"
        );
        // Reference computation: norm-weighted average over the SI rows.
        let mut expected = vec![0.0f32; model.store().dim()];
        let mut norm_sum = 0.0f32;
        for feature in ItemFeature::ALL {
            let token = model
                .space()
                .try_side_info(feature, si[feature.slot()])
                .expect("trained SI");
            let row = model.token_input(token);
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            norm_sum += norm;
            for (e, &x) in expected.iter_mut().zip(row) {
                *e += norm * x;
            }
        }
        // Multiply by the reciprocal, exactly as `scale` does — dividing
        // here would round differently and fail the bit-exact compare.
        let inv = 1.0 / norm_sum;
        for e in &mut expected {
            *e *= inv;
        }
        assert_eq!(weighted, expected, "weighted path must match the reference");
        assert_ne!(
            sum, weighted,
            "the two aggregation modes must actually differ on trained vectors"
        );
    }

    #[test]
    fn weighted_aggregation_reranks_relative_to_sum() {
        // The quality knob is real only if the two modes can produce
        // different candidate rankings somewhere in the catalog.
        let (corpus, model) = trained();
        let diverged = (0..corpus.config.n_items).map(ItemId).any(|item| {
            let si = *corpus.catalog.si_values(item);
            let a = cold_item_vector_with(&model, &si, SiAggregation::Sum).expect("sum");
            let b = cold_item_vector_with(&model, &si, SiAggregation::Weighted).expect("weighted");
            let rank = |v: &[f32]| {
                model
                    .similar_items_to_vector(v, 10)
                    .into_iter()
                    .map(|n| n.token.0)
                    .collect::<Vec<_>>()
            };
            rank(&a) != rank(&b)
        });
        assert!(
            diverged,
            "Sum and Weighted produced identical top-10 lists for every item"
        );
    }

    #[test]
    fn out_of_range_si_value_is_a_typed_error() {
        let (corpus, model) = trained();
        let mut si = *corpus.catalog.si_values(ItemId(0));
        si[ItemFeature::Brand.slot()] = u32::MAX;
        let err = cold_item_vector(&model, &si).unwrap_err();
        assert!(matches!(
            err,
            CoreError::SiValueOutOfRange {
                feature: ItemFeature::Brand,
                value: u32::MAX,
                ..
            }
        ));
    }

    #[test]
    fn cold_user_vector_requires_matching_types() {
        let (corpus, model) = trained();
        assert!(cold_user_vector(&model, &corpus.users, Some(0), None, None).is_ok());
        // Gender index 9 does not exist.
        assert_eq!(
            cold_user_vector(&model, &corpus.users, Some(9), None, None).unwrap_err(),
            CoreError::NoMatchingUserType
        );
    }

    #[test]
    fn different_demographics_get_different_recommendations() {
        let (corpus, model) = trained();
        let female =
            cold_user_recommendations(&model, &corpus.users, Some(0), None, None, 30).unwrap();
        let male =
            cold_user_recommendations(&model, &corpus.users, Some(1), None, None, 30).unwrap();
        let f: std::collections::HashSet<u32> = female.iter().map(|n| n.token.0).collect();
        let m: std::collections::HashSet<u32> = male.iter().map(|n| n.token.0).collect();
        let overlap = f.intersection(&m).count();
        assert!(
            overlap < 30,
            "female and male cold-start lists must differ, overlap {overlap}"
        );
    }

    #[test]
    fn averaging_single_type_is_identity() {
        let (corpus, model) = trained();
        let ut = corpus.users.user_type(sisg_corpus::UserId(0));
        let avg = average_user_types(&model, &[ut]).expect("known type");
        assert_eq!(avg, model.token_input(model.space().user_type(ut)).to_vec());
    }

    #[test]
    fn unknown_user_type_is_a_typed_error() {
        let (_, model) = trained();
        let bogus = UserTypeId(u32::MAX);
        assert_eq!(
            average_user_types(&model, &[bogus]).unwrap_err(),
            CoreError::UnknownUserType(bogus)
        );
    }
}
