//! Exhaustive model checks of the workspace's concurrent protocols.
//!
//! Every test pins the exact number of maximal schedules the explorer visits
//! (skipped when `SISG_INTERLEAVE_SMOKE` truncates the run): the counts for
//! the no-tear models are closed-form multinomials, so a drift in any pinned
//! count means the explorer's enumeration itself regressed, not just a model.

use sisg_interleave::models;

/// Serve-engine hot swap with the epoch bump inside the write lock: no
/// interleaving of 2 swaps against a concurrent serve can pair a stale epoch
/// with a fresh answer.
#[test]
fn hot_swap_is_torn_free_across_all_schedules() {
    let r = models::hot_swap(false);
    assert_eq!(r.violations, 0, "unexpected: {:?}", r.first_violation);
    assert_eq!(r.deadlocks, 0);
    if !r.truncated {
        assert_eq!(r.executions, 11);
    }
}

/// Moving the epoch bump after the unlock — the bug class rule 9 and the
/// engine's ORDERING comments guard against — must be caught: the reader can
/// observe epoch 1 paired with the generation-2 answer.
#[test]
fn hot_swap_with_bump_after_unlock_is_caught() {
    let r = models::hot_swap(true);
    assert!(r.violations > 0, "broken variant was not caught");
    assert_eq!(r.deadlocks, 0);
    if !r.truncated {
        assert_eq!(r.executions, 26);
        assert_eq!(r.violations, 12);
    }
    let msg = r.first_violation.expect("violation recorded");
    assert!(msg.contains("torn epoch/answer pair"), "{msg}");
}

/// Admission-cache swap: a reader that refreshes both its cached version and
/// its cached answer on reload never serves stale data, in any interleaving.
#[test]
fn cache_swap_clear_never_serves_stale_reads() {
    let r = models::cache_swap_clear(false);
    assert_eq!(r.violations, 0, "unexpected: {:?}", r.first_violation);
    assert_eq!(r.deadlocks, 0);
    if !r.truncated {
        assert_eq!(r.executions, 14);
    }
}

/// Forgetting to clear the cached answer on table swap must be caught: the
/// reader serves the old answer under the new version.
#[test]
fn cache_swap_without_clear_is_caught() {
    let r = models::cache_swap_clear(true);
    assert!(r.violations > 0, "broken variant was not caught");
    if !r.truncated {
        // Same step structure as the correct variant (the bug is a skipped
        // local refresh, not a skipped step), so the tree size must match it.
        assert_eq!(r.executions, 14);
        assert_eq!(r.violations, 8);
    }
    let msg = r.first_violation.expect("violation recorded");
    assert!(msg.contains("stale cache read"), "{msg}");
}

/// Word-width RowPtr publication cannot tear: with steps 1 + 1 + 2 across the
/// three threads the tree is exactly 4!/(1!·1!·2!) = 12 schedules, a closed
/// form that doubles as a check on the enumeration itself.
#[test]
fn rowptr_word_width_publication_cannot_tear() {
    let r = models::rowptr_no_tear_atomic();
    assert_eq!(r.violations, 0, "unexpected: {:?}", r.first_violation);
    assert_eq!(r.deadlocks, 0);
    if !r.truncated {
        assert_eq!(r.executions, 12);
    }
}

/// Publishing the same payload as two independent halves can tear — the
/// closed-form 8!/(2!·2!·4!) = 420 schedules include compositions of halves
/// from different writers. This is why RowPtr packs its bits into one word.
#[test]
fn rowptr_split_halves_publication_tears() {
    let r = models::rowptr_no_tear_split();
    assert!(r.violations > 0, "split publication was not caught tearing");
    if !r.truncated {
        assert_eq!(r.executions, 420);
        assert_eq!(r.violations, 300);
    }
    let msg = r.first_violation.expect("violation recorded");
    assert!(msg.contains("torn composite"), "{msg}");
}

/// Opposite-order lock acquisition deadlocks in exactly the schedules where
/// each thread holds one lock before the other wants its second; the explorer
/// must detect those without hanging and still complete the rest of the tree.
#[test]
fn opposite_lock_order_deadlock_is_detected() {
    let r = models::deadlock_demo();
    assert!(r.deadlocks > 0, "deadlock was not detected");
    assert_eq!(r.violations, 0);
    if !r.truncated {
        assert_eq!(r.executions, 6);
        assert_eq!(r.deadlocks, 2);
    }
}
