//! Probe: print enumeration counts for pinning.
fn main() {
    let r = sisg_interleave::models::hot_swap(false);
    println!(
        "hot_swap correct: exec={} viol={} dead={}",
        r.executions, r.violations, r.deadlocks
    );
    let r = sisg_interleave::models::hot_swap(true);
    println!(
        "hot_swap broken:  exec={} viol={} dead={} first={:?}",
        r.executions, r.violations, r.deadlocks, r.first_violation
    );
    let r = sisg_interleave::models::cache_swap_clear(false);
    println!(
        "cache correct:    exec={} viol={} dead={}",
        r.executions, r.violations, r.deadlocks
    );
    let r = sisg_interleave::models::cache_swap_clear(true);
    println!(
        "cache broken:     exec={} viol={} dead={} first={:?}",
        r.executions, r.violations, r.deadlocks, r.first_violation
    );
    let r = sisg_interleave::models::rowptr_no_tear_atomic();
    println!(
        "rowptr atomic:    exec={} viol={} dead={}",
        r.executions, r.violations, r.deadlocks
    );
    let r = sisg_interleave::models::rowptr_no_tear_split();
    println!(
        "rowptr split:     exec={} viol={} dead={} first={:?}",
        r.executions, r.violations, r.deadlocks, r.first_violation
    );
    let r = sisg_interleave::models::deadlock_demo();
    println!(
        "deadlock demo:    exec={} viol={} dead={}",
        r.executions, r.violations, r.deadlocks
    );
}
