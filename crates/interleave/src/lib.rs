#![warn(missing_docs)]

//! Loom-lite schedule-exhaustive interleaving checker.
//!
//! This crate model-checks the small concurrent protocols the serving and
//! training stacks rely on (epoch-pointer hot swap, admission-cache
//! swap-clear, RowPtr word-width no-tearing) by enumerating **every**
//! interleaving of 2–3 modeled threads and asserting an invariant after each
//! complete execution.
//!
//! # How it works
//!
//! Model threads are real OS threads, but they never run concurrently: each
//! shim operation ([`ModelAtomicU64`], [`ModelRwLock`], [`ModelCell`]) first
//! parks the thread at a *decision point* and waits for the controller to
//! grant it. The controller waits until every thread is parked (or finished),
//! computes the set of *enabled* threads (lock acquisitions are disabled while
//! the lock is held incompatibly), and picks one. Each pick is a choice point
//! in a DFS: the explorer replays a recorded prefix of choices, extends it
//! with first-choice defaults, and backtracks after every complete execution
//! until the whole schedule tree is exhausted. Because exactly one thread runs
//! between decision points, every execution is deterministic given its choice
//! sequence, and the enumeration covers all sequentially-consistent
//! interleavings of the modeled steps.
//!
//! Deadlocks (no thread enabled, not all finished) are detected, counted, and
//! the execution is aborted: every shim call returns [`Aborted`] so blocked
//! threads unwind without panicking.
//!
//! # Smoke cap
//!
//! Setting `SISG_INTERLEAVE_SMOKE=<n>` caps exploration at `n` executions and
//! marks the [`Report`] as `truncated`; tests skip exact-count pinning when
//! truncated so CI can run a fast smoke pass while local runs stay exhaustive.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;

pub mod models;

/// Error returned by every shim operation once the current execution has been
/// aborted (after a detected deadlock). Bodies propagate it with `?` so all
/// threads unwind cleanly instead of blocking forever or panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aborted;

/// What a parked model thread wants to do next. Lock intents carry the lock
/// id so the controller can decide enabledness from its own lock table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Intent {
    /// A plain shared-memory step (atomic load/store, cell read/write).
    Op,
    /// Acquire the read side of lock `rid`; enabled while no writer holds it.
    AcquireRead(usize),
    /// Acquire the write side of lock `rid`; enabled while it is free.
    AcquireWrite(usize),
    /// Release a held lock; always enabled.
    Release { rid: usize, write: bool },
}

/// Lifecycle of one model thread as seen by the controller.
#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Executing between decision points (or not yet at its first one).
    Running,
    /// Parked at a decision point, waiting to be granted.
    Wants(Intent),
    /// Granted; will transition back to Running, perform the step, and park
    /// again (or finish).
    Granted,
    /// Body returned (normally or via [`Aborted`]).
    Finished,
}

#[derive(Debug, Clone, Copy)]
struct LockState {
    readers: usize,
    writer: bool,
}

struct SchedInner {
    phases: Vec<Phase>,
    locks: Vec<LockState>,
    aborted: bool,
}

struct Sched {
    inner: Mutex<SchedInner>,
    cv: Condvar,
}

fn lock_inner(sched: &Sched) -> MutexGuard<'_, SchedInner> {
    // A model-thread panic would poison this mutex; the scheduler state is
    // still consistent (every mutation is complete before unlock), so recover
    // the guard rather than propagating the poison.
    sched.inner.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait<'a>(sched: &'a Sched, guard: MutexGuard<'a, SchedInner>) -> MutexGuard<'a, SchedInner> {
    sched.cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Per-thread handle passed to every model body; shim operations use it to
/// park at decision points.
pub struct Ctx {
    sched: Arc<Sched>,
    tid: usize,
}

impl Ctx {
    fn step(&self, intent: Intent) -> Result<(), Aborted> {
        let mut g = lock_inner(&self.sched);
        if g.aborted {
            return Err(Aborted);
        }
        g.phases[self.tid] = Phase::Wants(intent);
        self.sched.cv.notify_all();
        loop {
            if g.aborted {
                return Err(Aborted);
            }
            if matches!(g.phases[self.tid], Phase::Granted) {
                break;
            }
            g = wait(&self.sched, g);
        }
        g.phases[self.tid] = Phase::Running;
        Ok(())
    }
}

/// A model thread body. The `Result` lets bodies propagate [`Aborted`] with
/// `?` when the execution is torn down after a deadlock.
pub type Body = Box<dyn FnOnce(&Ctx) -> Result<(), Aborted> + Send + 'static>;

/// Post-execution invariant check, run by the explorer after every complete
/// (non-deadlocked) execution. Returns `Err(description)` on a violation.
pub type Checker = Box<dyn FnOnce() -> Result<(), String>>;

/// Allocator for per-execution scheduler resources (lock ids). A fresh one is
/// handed to the model builder for every execution.
pub struct Alloc {
    locks: usize,
}

impl Alloc {
    fn new_rid(&mut self) -> usize {
        let rid = self.locks;
        self.locks += 1;
        rid
    }
}

/// Outcome of exhaustively exploring a model's schedule tree.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of maximal schedules (complete or deadlocked executions) explored.
    pub executions: u64,
    /// Executions that ended in a deadlock (no thread enabled, not all finished).
    pub deadlocks: u64,
    /// Executions whose post-hoc invariant check failed.
    pub violations: u64,
    /// Description of the first invariant violation, if any.
    pub first_violation: Option<String>,
    /// True when the `SISG_INTERLEAVE_SMOKE` cap (or an explicit cap) stopped
    /// exploration before the schedule tree was exhausted.
    pub truncated: bool,
}

impl Report {
    /// True when every explored schedule completed without deadlock or
    /// invariant violation.
    pub fn ok(&self) -> bool {
        self.deadlocks == 0 && self.violations == 0
    }
}

fn smoke_cap() -> Option<u64> {
    std::env::var("SISG_INTERLEAVE_SMOKE")
        .ok()?
        .trim()
        .parse()
        .ok()
}

/// Explore every interleaving of the model produced by `build`, honoring the
/// `SISG_INTERLEAVE_SMOKE` execution cap if set.
///
/// `build` is called once per execution with a fresh [`Alloc`] and must return
/// the thread bodies plus the invariant checker for that execution's shared
/// state. It must be deterministic: the same choice sequence must reproduce
/// the same behavior, or the explorer's replay assertion fires.
pub fn explore<F>(build: F) -> Report
where
    F: Fn(&mut Alloc) -> (Vec<Body>, Checker),
{
    explore_with_cap(smoke_cap(), build)
}

/// [`explore`] with an explicit execution cap instead of the environment
/// variable (used by tests so parallel tests never race on the process env).
pub fn explore_with_cap<F>(cap: Option<u64>, build: F) -> Report
where
    F: Fn(&mut Alloc) -> (Vec<Body>, Checker),
{
    let mut schedule: Vec<(usize, usize)> = Vec::new();
    let mut report = Report {
        executions: 0,
        deadlocks: 0,
        violations: 0,
        first_violation: None,
        truncated: false,
    };
    loop {
        let mut alloc = Alloc { locks: 0 };
        let (bodies, checker) = build(&mut alloc);
        let sched = Arc::new(Sched {
            inner: Mutex::new(SchedInner {
                phases: vec![Phase::Running; bodies.len()],
                locks: vec![
                    LockState {
                        readers: 0,
                        writer: false
                    };
                    alloc.locks
                ],
                aborted: false,
            }),
            cv: Condvar::new(),
        });
        let deadlocked = run_one(&sched, bodies, &mut schedule);
        report.executions += 1;
        if deadlocked {
            report.deadlocks += 1;
        } else if let Err(msg) = checker() {
            report.violations += 1;
            if report.first_violation.is_none() {
                report.first_violation = Some(msg);
            }
        }
        if let Some(c) = cap {
            if report.executions >= c {
                report.truncated = true;
                return report;
            }
        }
        // Backtrack: advance the deepest choice point that still has an
        // unexplored branch; drop exhausted tail entries. An empty stack means
        // the whole tree has been visited.
        loop {
            match schedule.last_mut() {
                None => return report,
                Some(last) => {
                    if last.0 + 1 < last.1 {
                        last.0 += 1;
                        break;
                    }
                    schedule.pop();
                }
            }
        }
    }
}

/// Run one execution, replaying the choice prefix in `schedule` and extending
/// it with first-choice defaults at new choice points. Returns true if the
/// execution deadlocked.
fn run_one(sched: &Arc<Sched>, bodies: Vec<Body>, schedule: &mut Vec<(usize, usize)>) -> bool {
    let handles: Vec<_> = bodies
        .into_iter()
        .enumerate()
        .map(|(tid, body)| {
            let ctx = Ctx {
                sched: Arc::clone(sched),
                tid,
            };
            thread::spawn(move || {
                let _ = body(&ctx);
                let mut g = lock_inner(&ctx.sched);
                g.phases[ctx.tid] = Phase::Finished;
                ctx.sched.cv.notify_all();
            })
        })
        .collect();

    let mut depth = 0usize;
    let deadlocked = loop {
        let mut g = lock_inner(sched);
        while g
            .phases
            .iter()
            .any(|p| matches!(p, Phase::Running | Phase::Granted))
        {
            g = wait(sched, g);
        }
        if g.phases.iter().all(|p| matches!(p, Phase::Finished)) {
            break false;
        }
        let enabled: Vec<usize> = g
            .phases
            .iter()
            .enumerate()
            .filter_map(|(tid, p)| match p {
                Phase::Wants(intent) => match intent {
                    Intent::Op | Intent::Release { .. } => Some(tid),
                    Intent::AcquireRead(rid) => (!g.locks[*rid].writer).then_some(tid),
                    Intent::AcquireWrite(rid) => {
                        (!g.locks[*rid].writer && g.locks[*rid].readers == 0).then_some(tid)
                    }
                },
                _ => None,
            })
            .collect();
        if enabled.is_empty() {
            // Deadlock: some threads are parked on acquisitions that can never
            // be granted. Abort so every blocked shim call returns Aborted.
            g.aborted = true;
            sched.cv.notify_all();
            while !g.phases.iter().all(|p| matches!(p, Phase::Finished)) {
                g = wait(sched, g);
            }
            break true;
        }
        let pick = if depth < schedule.len() {
            let (choice, width) = schedule[depth];
            assert_eq!(
                width,
                enabled.len(),
                "non-deterministic model: replay reached a choice point with a \
                 different enabled set"
            );
            choice
        } else {
            schedule.push((0, enabled.len()));
            0
        };
        depth += 1;
        let tid = enabled[pick];
        if let Phase::Wants(intent) = g.phases[tid] {
            match intent {
                Intent::Op => {}
                Intent::AcquireRead(rid) => g.locks[rid].readers += 1,
                Intent::AcquireWrite(rid) => g.locks[rid].writer = true,
                Intent::Release { rid, write } => {
                    if write {
                        g.locks[rid].writer = false;
                    } else {
                        g.locks[rid].readers -= 1;
                    }
                }
            }
        }
        g.phases[tid] = Phase::Granted;
        sched.cv.notify_all();
        drop(g);
    };
    for h in handles {
        let _ = h.join();
    }
    deadlocked
}

/// Model of a word-width atomic. Every `load`/`store` is one scheduler step;
/// `value` reads without stepping, for post-execution checkers.
#[derive(Clone)]
pub struct ModelAtomicU64 {
    v: Arc<AtomicU64>,
}

impl ModelAtomicU64 {
    /// New atomic with the given initial value.
    pub fn new(v: u64) -> Self {
        Self {
            v: Arc::new(AtomicU64::new(v)),
        }
    }

    /// Atomically load the value (one scheduler step).
    pub fn load(&self, ctx: &Ctx) -> Result<u64, Aborted> {
        ctx.step(Intent::Op)?;
        // ORDERING: Relaxed — the scheduler's mutex/condvar handoff already
        // totally orders all model steps; the atomic only carries the value.
        Ok(self.v.load(Ordering::Relaxed))
    }

    /// Atomically store the value (one scheduler step).
    pub fn store(&self, ctx: &Ctx, val: u64) -> Result<(), Aborted> {
        ctx.step(Intent::Op)?;
        // ORDERING: Relaxed — same scheduler-handoff argument as `load`.
        self.v.store(val, Ordering::Relaxed);
        Ok(())
    }

    /// Read the value without taking a scheduler step (checker-only).
    pub fn value(&self) -> u64 {
        // ORDERING: Relaxed — called after all model threads have been
        // joined, so there is nothing left to order against.
        self.v.load(Ordering::Relaxed)
    }
}

/// Model of a reader-writer lock. Guards are RAII tokens whose drop performs
/// the release step; the protected data lives in [`ModelCell`]s.
#[derive(Clone)]
pub struct ModelRwLock {
    rid: usize,
}

impl ModelRwLock {
    /// Register a new lock with the execution's scheduler.
    pub fn new(alloc: &mut Alloc) -> Self {
        Self {
            rid: alloc.new_rid(),
        }
    }

    /// Acquire the read side; blocks (as a scheduler step) until no writer
    /// holds the lock.
    pub fn read(&self, ctx: &Ctx) -> Result<ModelReadGuard, Aborted> {
        ctx.step(Intent::AcquireRead(self.rid))?;
        Ok(ModelReadGuard {
            sched: Arc::clone(&ctx.sched),
            tid: ctx.tid,
            rid: self.rid,
        })
    }

    /// Acquire the write side; blocks (as a scheduler step) until the lock is
    /// completely free.
    pub fn write(&self, ctx: &Ctx) -> Result<ModelWriteGuard, Aborted> {
        ctx.step(Intent::AcquireWrite(self.rid))?;
        Ok(ModelWriteGuard {
            sched: Arc::clone(&ctx.sched),
            tid: ctx.tid,
            rid: self.rid,
        })
    }
}

/// RAII token for a held read lock; dropping it is the release step.
pub struct ModelReadGuard {
    sched: Arc<Sched>,
    tid: usize,
    rid: usize,
}

impl Drop for ModelReadGuard {
    fn drop(&mut self) {
        let ctx = Ctx {
            sched: Arc::clone(&self.sched),
            tid: self.tid,
        };
        let _ = ctx.step(Intent::Release {
            rid: self.rid,
            write: false,
        });
    }
}

/// RAII token for a held write lock; dropping it is the release step.
pub struct ModelWriteGuard {
    sched: Arc<Sched>,
    tid: usize,
    rid: usize,
}

impl Drop for ModelWriteGuard {
    fn drop(&mut self) {
        let ctx = Ctx {
            sched: Arc::clone(&self.sched),
            tid: self.tid,
        };
        let _ = ctx.step(Intent::Release {
            rid: self.rid,
            write: true,
        });
    }
}

/// Model of a shared non-atomic slot (e.g. the snapshot pointer target or a
/// cache table). Every `get`/`set` is one scheduler step; `peek` reads without
/// stepping, for post-execution checkers.
pub struct ModelCell<T: Clone> {
    v: Arc<Mutex<T>>,
}

impl<T: Clone> Clone for ModelCell<T> {
    fn clone(&self) -> Self {
        Self {
            v: Arc::clone(&self.v),
        }
    }
}

impl<T: Clone> ModelCell<T> {
    /// New cell with the given initial value.
    pub fn new(v: T) -> Self {
        Self {
            v: Arc::new(Mutex::new(v)),
        }
    }

    /// Read the value (one scheduler step).
    pub fn get(&self, ctx: &Ctx) -> Result<T, Aborted> {
        ctx.step(Intent::Op)?;
        Ok(self
            .v
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone())
    }

    /// Overwrite the value (one scheduler step).
    pub fn set(&self, ctx: &Ctx, val: T) -> Result<(), Aborted> {
        ctx.step(Intent::Op)?;
        *self.v.lock().unwrap_or_else(PoisonError::into_inner) = val;
        Ok(())
    }

    /// Read the value without taking a scheduler step (checker-only).
    pub fn peek(&self) -> T {
        self.v
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// Observation log shared between model bodies and the checker. Pushes do not
/// take a scheduler step: recording what a thread *already observed* is
/// bookkeeping, not a protocol action, and must not perturb the schedule
/// space.
pub struct ObsLog<T> {
    v: Arc<Mutex<Vec<T>>>,
}

impl<T> Clone for ObsLog<T> {
    fn clone(&self) -> Self {
        Self {
            v: Arc::clone(&self.v),
        }
    }
}

impl<T> Default for ObsLog<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ObsLog<T> {
    /// New empty log.
    pub fn new() -> Self {
        Self {
            v: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Append an observation (non-stepping).
    pub fn push(&self, t: T) {
        self.v
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(t);
    }

    /// Drain all observations (checker-only).
    pub fn take(&self) -> Vec<T> {
        std::mem::take(&mut *self.v.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op_thread(steps: usize) -> (Body, ModelAtomicU64) {
        let a = ModelAtomicU64::new(0);
        let h = a.clone();
        let body: Body = Box::new(move |ctx| {
            for _ in 0..steps {
                let cur = h.load(ctx)?;
                h.store(ctx, cur + 1)?;
            }
            Ok(())
        });
        (body, a)
    }

    #[test]
    fn single_thread_has_exactly_one_schedule() {
        let r = explore(|_| {
            let (body, a) = op_thread(3);
            let checker: Checker = Box::new(move || {
                if a.value() == 3 {
                    Ok(())
                } else {
                    Err(format!("expected 3 increments, saw {}", a.value()))
                }
            });
            (vec![body], checker)
        });
        assert!(r.ok(), "{:?}", r.first_violation);
        assert_eq!(r.executions, 1);
        assert!(!r.truncated);
    }

    #[test]
    fn two_single_step_threads_have_two_schedules() {
        // Two threads, one Op each: the only choice is who goes first.
        let r = explore(|_| {
            let a = ModelAtomicU64::new(0);
            let (h1, h2) = (a.clone(), a.clone());
            let t1: Body = Box::new(move |ctx| h1.store(ctx, 1));
            let t2: Body = Box::new(move |ctx| h2.store(ctx, 2));
            let checker: Checker = Box::new(move || {
                let v = a.value();
                if v == 1 || v == 2 {
                    Ok(())
                } else {
                    Err(format!("impossible final value {v}"))
                }
            });
            (vec![t1, t2], checker)
        });
        assert!(r.ok(), "{:?}", r.first_violation);
        assert_eq!(r.executions, 2);
    }

    #[test]
    fn unsynchronized_read_modify_write_race_is_found() {
        // Two threads each do load-then-store of (loaded + 1): the classic
        // lost update. Exhaustive enumeration must find an execution where
        // the final value is 1 instead of 2.
        let r = explore(|_| {
            let a = ModelAtomicU64::new(0);
            let mk = |h: ModelAtomicU64| -> Body {
                Box::new(move |ctx| {
                    let cur = h.load(ctx)?;
                    h.store(ctx, cur + 1)?;
                    Ok(())
                })
            };
            let (t1, t2) = (mk(a.clone()), mk(a.clone()));
            let checker: Checker = Box::new(move || {
                if a.value() == 2 {
                    Ok(())
                } else {
                    Err(format!("lost update: final value {}", a.value()))
                }
            });
            (vec![t1, t2], checker)
        });
        // 4 steps split 2/2 across threads: C(4,2) = 6 interleavings, of
        // which 4 interleave the load/store pairs and lose an update.
        assert_eq!(r.executions, 6);
        assert_eq!(r.violations, 4, "{:?}", r.first_violation);
        assert_eq!(r.deadlocks, 0);
    }

    #[test]
    fn write_lock_serializes_read_modify_write() {
        // Same increment race, but under a write lock: no lost updates, and
        // the schedule space collapses to the two thread orders.
        let r = explore(|alloc| {
            let lock = ModelRwLock::new(alloc);
            let a = ModelAtomicU64::new(0);
            let mk = |lock: ModelRwLock, h: ModelAtomicU64| -> Body {
                Box::new(move |ctx| {
                    let g = lock.write(ctx)?;
                    let cur = h.load(ctx)?;
                    h.store(ctx, cur + 1)?;
                    drop(g);
                    Ok(())
                })
            };
            let (t1, t2) = (mk(lock.clone(), a.clone()), mk(lock, a.clone()));
            let checker: Checker = Box::new(move || {
                if a.value() == 2 {
                    Ok(())
                } else {
                    Err(format!("lost update under lock: final {}", a.value()))
                }
            });
            (vec![t1, t2], checker)
        });
        assert!(r.ok(), "{:?}", r.first_violation);
        // Once a thread holds the write lock the other is disabled until the
        // release step, so only the initial acquisition order branches.
        assert_eq!(r.executions, 2);
    }

    #[test]
    fn explicit_cap_truncates_and_reports_it() {
        let r = explore_with_cap(Some(3), |_| {
            let (t1, _) = op_thread(2);
            let (t2, _) = op_thread(2);
            let checker: Checker = Box::new(|| Ok(()));
            (vec![t1, t2], checker)
        });
        assert!(r.truncated);
        assert_eq!(r.executions, 3);
    }

    #[test]
    fn readers_do_not_exclude_each_other_but_writers_do() {
        // Two readers + one writer on one lock, one Op each inside the
        // critical section. Readers overlapping is allowed (no deadlock, no
        // violation); the writer is mutually exclusive with both.
        let r = explore(|alloc| {
            let lock = ModelRwLock::new(alloc);
            let mk_reader = |lock: ModelRwLock| -> Body {
                Box::new(move |ctx| {
                    let g = lock.read(ctx)?;
                    ctx.step(Intent::Op)?;
                    drop(g);
                    Ok(())
                })
            };
            let lw = lock.clone();
            let writer: Body = Box::new(move |ctx| {
                let g = lw.write(ctx)?;
                ctx.step(Intent::Op)?;
                drop(g);
                Ok(())
            });
            let checker: Checker = Box::new(|| Ok(()));
            (
                vec![mk_reader(lock.clone()), mk_reader(lock), writer],
                checker,
            )
        });
        assert!(r.ok());
        assert!(r.executions > 0);
    }
}
