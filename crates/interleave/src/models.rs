//! Models of the concrete concurrent protocols this workspace ships, each as
//! a correct variant and (where a historical bug class exists) a deliberately
//! broken variant the checker must catch.
//!
//! The models are deliberately tiny — a handful of scheduler steps per thread
//! — so the full schedule tree stays exhaustively enumerable, while still
//! exercising the exact step ordering the production code relies on:
//!
//! * [`hot_swap`] — the serve engine's epoch-pointer snapshot swap
//!   (`crates/serve/src/engine.rs`): the epoch bump must happen *inside* the
//!   write lock or a reader can pair a stale epoch with a fresh answer.
//! * [`cache_swap_clear`] — the admission-cache table swap: a reader that
//!   reloads the table after a version bump must also refresh its cached
//!   answer, or it serves a stale value under the new version.
//! * [`rowptr_no_tear_atomic`] / [`rowptr_no_tear_split`] — RowPtr's packed
//!   word: a single word-width atomic cannot tear, while publishing the same
//!   payload as two independent halves demonstrably can.
//! * [`deadlock_demo`] — two locks acquired in opposite orders, proving the
//!   explorer's deadlock detection fires.

use crate::{explore, Body, Checker, ModelAtomicU64, ModelCell, ModelRwLock, ObsLog, Report};

/// Epoch-pointer hot swap, as in the serve engine: a writer installs two
/// successive snapshot generations (answer = generation × 100) under a write
/// lock and bumps the epoch counter; a reader probes the epoch and, when it
/// moved, re-reads epoch + answer under the read lock.
///
/// Invariant: every (epoch, answer) pair a reader serves satisfies
/// `answer == epoch * 100` (the initial pair is (0, 0)).
///
/// With `bump_after_unlock = false` the epoch bump happens inside the write
/// lock — the protocol the production engine uses — and no interleaving can
/// produce a torn pair. With `bump_after_unlock = true` the bump moves after
/// the unlock, and the checker finds schedules where a reader pairs epoch 1
/// with the generation-2 answer.
pub fn hot_swap(bump_after_unlock: bool) -> Report {
    explore(move |alloc| {
        let lock = ModelRwLock::new(alloc);
        let epoch = ModelAtomicU64::new(0);
        let answer = ModelCell::new(0u64);
        let obs: ObsLog<(u64, u64)> = ObsLog::new();

        let writer: Body = {
            let (lock, epoch, answer) = (lock.clone(), epoch.clone(), answer.clone());
            Box::new(move |ctx| {
                for generation in 1..=2u64 {
                    let w = lock.write(ctx)?;
                    answer.set(ctx, generation * 100)?;
                    if !bump_after_unlock {
                        epoch.store(ctx, generation)?;
                    }
                    drop(w);
                    if bump_after_unlock {
                        epoch.store(ctx, generation)?;
                    }
                }
                Ok(())
            })
        };

        let reader: Body = {
            let obs = obs.clone();
            Box::new(move |ctx| {
                let mut served = (0u64, 0u64);
                let probe = epoch.load(ctx)?;
                if probe != served.0 {
                    let r = lock.read(ctx)?;
                    let e = epoch.load(ctx)?;
                    let v = answer.get(ctx)?;
                    drop(r);
                    served = (e, v);
                }
                obs.push(served);
                Ok(())
            })
        };

        let checker: Checker = Box::new(move || {
            for (e, v) in obs.take() {
                if v != e * 100 {
                    return Err(format!("torn epoch/answer pair: epoch {e} with answer {v}"));
                }
            }
            Ok(())
        });
        (vec![writer, reader], checker)
    })
}

/// Admission-cache swap-clear: a writer swaps the backing table (value = 100)
/// and bumps its version inside a write lock; a reader serves twice from a
/// thread-local cache of (version, answer), reloading the table under the
/// read lock whenever its cached version is stale.
///
/// Invariant: every served (version, answer) pair satisfies
/// `answer == version * 100`.
///
/// With `skip_clear = false` the reload refreshes the cached answer along
/// with the version — no interleaving serves stale data. With
/// `skip_clear = true` the reload updates the version but forgets to refresh
/// the answer (the swap-without-clear bug class), and the checker finds
/// schedules serving the old answer under the new version.
pub fn cache_swap_clear(skip_clear: bool) -> Report {
    explore(move |alloc| {
        let lock = ModelRwLock::new(alloc);
        let version = ModelAtomicU64::new(0);
        let table = ModelCell::new(0u64);
        let obs: ObsLog<(u64, u64)> = ObsLog::new();

        let writer: Body = {
            let (lock, version, table) = (lock.clone(), version.clone(), table.clone());
            Box::new(move |ctx| {
                let w = lock.write(ctx)?;
                table.set(ctx, 100)?;
                version.store(ctx, 1)?;
                drop(w);
                Ok(())
            })
        };

        let reader: Body = {
            let obs = obs.clone();
            Box::new(move |ctx| {
                let mut cache = (0u64, 0u64);
                for _serve in 0..2 {
                    let probe = version.load(ctx)?;
                    if probe != cache.0 {
                        let r = lock.read(ctx)?;
                        let val = table.get(ctx)?;
                        let ver = version.load(ctx)?;
                        drop(r);
                        cache.0 = ver;
                        if !skip_clear {
                            cache.1 = val;
                        }
                    }
                    obs.push(cache);
                }
                Ok(())
            })
        };

        let checker: Checker = Box::new(move || {
            for (ver, ans) in obs.take() {
                if ans != ver * 100 {
                    return Err(format!(
                        "stale cache read: version {ver} served answer {ans}"
                    ));
                }
            }
            Ok(())
        });
        (vec![writer, reader], checker)
    })
}

/// RowPtr no-tearing, word-width variant: two writers publish complete packed
/// words (`0x1111`, `0x2222`) with single atomic stores while a reader loads
/// the word twice. Every observed value must be one of the three complete
/// words — with one step per store there is no interleaving that can tear.
///
/// Steps are 1 + 1 + 2 across the three threads, so the schedule tree has
/// exactly 4!/(1!·1!·2!) = 12 executions; the test pins that closed form,
/// which doubles as a correctness check on the explorer's enumeration.
pub fn rowptr_no_tear_atomic() -> Report {
    explore(|_alloc| {
        let word = ModelAtomicU64::new(0);
        let obs: ObsLog<u64> = ObsLog::new();

        let writer_a: Body = {
            let word = word.clone();
            Box::new(move |ctx| word.store(ctx, 0x1111))
        };
        let writer_b: Body = {
            let word = word.clone();
            Box::new(move |ctx| word.store(ctx, 0x2222))
        };
        let reader: Body = {
            let obs = obs.clone();
            Box::new(move |ctx| {
                for _ in 0..2 {
                    let v = word.load(ctx)?;
                    obs.push(v);
                }
                Ok(())
            })
        };

        let checker: Checker = Box::new(move || {
            for v in obs.take() {
                if v != 0 && v != 0x1111 && v != 0x2222 {
                    return Err(format!("torn word: {v:#x}"));
                }
            }
            Ok(())
        });
        (vec![writer_a, writer_b, reader], checker)
    })
}

/// RowPtr no-tearing, broken split-halves variant: the same payloads
/// published as two independent halves (writer A stores lo=1 then hi=1,
/// writer B lo=2 then hi=2) while a reader composes (lo, hi) twice.
///
/// Invariant: a composed pair must have matching halves. Splitting the word
/// makes torn pairs like (1, 2) reachable, which is exactly why RowPtr packs
/// its bits into one word-width atomic.
///
/// Steps are 2 + 2 + 4, so the tree has 8!/(2!·2!·4!) = 420 executions; the
/// test pins that closed form too.
pub fn rowptr_no_tear_split() -> Report {
    explore(|_alloc| {
        let lo = ModelAtomicU64::new(0);
        let hi = ModelAtomicU64::new(0);
        let obs: ObsLog<(u64, u64)> = ObsLog::new();

        let mk_writer = |lo: ModelAtomicU64, hi: ModelAtomicU64, val: u64| -> Body {
            Box::new(move |ctx| {
                lo.store(ctx, val)?;
                hi.store(ctx, val)?;
                Ok(())
            })
        };
        let writer_a = mk_writer(lo.clone(), hi.clone(), 1);
        let writer_b = mk_writer(lo.clone(), hi.clone(), 2);
        let reader: Body = {
            let obs = obs.clone();
            Box::new(move |ctx| {
                for _ in 0..2 {
                    let l = lo.load(ctx)?;
                    let h = hi.load(ctx)?;
                    obs.push((l, h));
                }
                Ok(())
            })
        };

        let checker: Checker = Box::new(move || {
            for (l, h) in obs.take() {
                if l != h {
                    return Err(format!("torn composite: lo {l} / hi {h}"));
                }
            }
            Ok(())
        });
        (vec![writer_a, writer_b, reader], checker)
    })
}

/// Classic lock-order-inversion deadlock: two threads take the same two
/// write locks in opposite orders. The explorer must find the schedules where
/// each thread holds one lock and waits forever on the other, and report them
/// as deadlocks without hanging or panicking.
pub fn deadlock_demo() -> Report {
    explore(|alloc| {
        let l1 = ModelRwLock::new(alloc);
        let l2 = ModelRwLock::new(alloc);

        let mk = |first: ModelRwLock, second: ModelRwLock| -> Body {
            Box::new(move |ctx| {
                let a = first.write(ctx)?;
                let b = second.write(ctx)?;
                drop(b);
                drop(a);
                Ok(())
            })
        };
        let t1 = mk(l1.clone(), l2.clone());
        let t2 = mk(l2, l1);
        let checker: Checker = Box::new(|| Ok(()));
        (vec![t1, t2], checker)
    })
}
