//! # taobao-sisg
//!
//! A from-scratch Rust reproduction of *"Billion-scale Recommendation with
//! Heterogeneous Side Information at Taobao"* (Pfadler et al., ICDE 2020):
//! the **SISG** framework, its distributed word2vec engine (TNS / ATNS /
//! HBGP), the **EGES** and **CF** baselines, a synthetic Taobao-like
//! workload generator, and the full evaluation harness that regenerates
//! every table and figure of the paper.
//!
//! This crate is the umbrella: it re-exports the workspace members so a
//! downstream user can depend on one crate. See the README for a tour and
//! `examples/` for runnable entry points:
//!
//! ```no_run
//! use taobao_sisg::corpus::{CorpusConfig, GeneratedCorpus};
//! use taobao_sisg::core::{Recommender, Variant};
//! use taobao_sisg::sgns::SgnsConfig;
//!
//! let corpus = GeneratedCorpus::generate(CorpusConfig::scaled(2_000, 42));
//! let rec = Recommender::train(&corpus, Variant::SisgFUD, &SgnsConfig::default())
//!     .expect("valid config");
//! for r in rec.similar_items(taobao_sisg::corpus::ItemId(0), 10) {
//!     println!("{:?} score {:.3}", r.item, r.score);
//! }
//! ```

#![warn(missing_docs)]

pub use sisg_ann as ann;
pub use sisg_cf as cf;
pub use sisg_core as core;
pub use sisg_corpus as corpus;
pub use sisg_distributed as distributed;
pub use sisg_eges as eges;
pub use sisg_embedding as embedding;
pub use sisg_eval as eval;
pub use sisg_serve as serve;
pub use sisg_sgns as sgns;
