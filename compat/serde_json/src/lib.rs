//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Emits and parses JSON over the [`serde::Value`] tree of the workspace's
//! vendored serde stub. Covers the workspace surface: [`to_string`],
//! [`to_string_pretty`], and [`from_str`].
#![warn(missing_docs)]

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` as human-indented JSON (two spaces, like real
/// `serde_json`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses a JSON document into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn emit(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) -> Result<(), Error> {
    use std::fmt::Write;
    let pad = |out: &mut String, depth: usize| {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => write!(out, "{u}").expect("write to String"),
        Value::I64(i) => write!(out, "{i}").expect("write to String"),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new(format!("{f} is not representable in JSON")));
            }
            // Rust's Display for floats is the shortest string that parses
            // back to the same bits, so roundtrips are exact.
            write!(out, "{f}").expect("write to String");
        }
        Value::Str(s) => emit_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                emit(item, indent, depth + 1, out)?;
            }
            pad(out, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                emit_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(item, indent, depth + 1, out)?;
            }
            pad(out, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid UTF-8 in number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("bad number at byte {start}")));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_vec() {
        let v: Vec<f64> = vec![0.5, 2.0, -3.25];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[0.5,2,-3.25]");
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Vec<u32> = vec![1, 2];
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(json, "[\n  1,\n  2\n]");
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a\"b\\c\nd".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<Vec<u32>>("nope").is_err());
        assert!(from_str::<Vec<u32>>("[1] trailing").is_err());
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for f in [0.1f64, 1.0 / 3.0, 1e-300, 123_456_789.123_456_79] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }
}
