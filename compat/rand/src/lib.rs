//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This build environment has no network access and no vendored registry,
//! so the workspace resolves `rand` to this crate via a path dependency
//! (see `[workspace.dependencies]` in the root `Cargo.toml`). It reimplements exactly the API surface the
//! workspace uses — seeded [`rngs::StdRng`], the [`Rng`] / [`SeedableRng`]
//! traits, `gen`, `gen_range`, and `gen_bool` — with deterministic,
//! high-quality generators (SplitMix64 seeding into xoshiro256++).
//!
//! Deliberately **not** implemented: `thread_rng`, `from_entropy`, OS
//! entropy of any kind. The repo's determinism guarantee (DESIGN.md §5)
//! bans unseeded randomness, and `cargo run -p xtask -- lint` enforces the
//! ban; this stub makes unseeded paths unrepresentable as well.
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of uniformly distributed
/// machine words.
pub trait RngCore {
    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u8 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_32 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i64 - self.start as i64) as u64;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as i64;
                (self.start as i64 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i64 - lo as i64) as u64 + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as i64;
                (lo as i64 + draw) as $t
            }
        }
    )*};
}
int_range_32!(u8, u16, u32, i8, i16, i32);

macro_rules! int_range_64 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = hi.wrapping_sub(lo) as u128 + 1;
                // `span` can be 2^64 (full domain); the multiply-shift
                // handles that case because draw is taken mod 2^64 anyway.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}
int_range_64!(u64, usize, i64, isize);

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly like the real `rand` crate does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion only.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    #[inline]
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Not the ChaCha12 generator the real crate uses — the workspace only
    /// relies on *self-consistent* determinism (same seed, same stream),
    /// never on the exact byte stream of upstream `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&w));
            let x = rng.gen_range(0usize..=4);
            assert!(x <= 4);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bin: {c}");
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        assert!((0.45..0.55).contains(&(sum / 10_000.0)));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
