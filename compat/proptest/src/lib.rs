//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the surface the workspace's property suites use: the
//! [`proptest!`] macro (including `#![proptest_config(...)]`),
//! [`Strategy`] with [`Strategy::prop_map`], range strategies,
//! [`any`], [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! - **Deterministic**: cases are generated from a fixed seed, never from
//!   OS entropy, matching the repo-wide determinism rule (DESIGN.md §5)
//!   that `cargo run -p xtask -- lint` enforces.
//! - **No shrinking**: a failing case panics with its inputs via the
//!   assertion message instead of being minimized.
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Re-exports that mirror `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Per-suite configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Marker strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The full-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        // Finite full-range floats; NaN/inf edge cases are out of scope
        // for the numeric code under test.
        (rng.gen::<f32>() - 0.5) * 2.0 * f32::MAX.sqrt()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        (rng.gen::<f64>() - 0.5) * 2.0e18
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for collection strategies. Constructed
    /// via `From` on `usize` ranges — which is what makes unsuffixed
    /// literals in `vec(strat, 2..10)` infer `usize`, exactly as the real
    /// crate's `Into<SizeRange>` bound does.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// A strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn uniformly from `size`.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<E::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Seeds the per-property RNG. Mixes the property name so different
/// properties explore different streams, deterministically across runs.
pub fn rng_for(test_name: &str) -> StdRng {
    use rand::SeedableRng;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Declares deterministic property tests (see module docs for the
/// differences from real proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // The closure gives `prop_assume!` an early exit that
                    // skips just this case. `mut` is required whenever the
                    // body mutates a captured binding (FnMut), unused
                    // otherwise.
                    #[allow(unused_mut)]
                    let mut case = move || { $body };
                    case();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a property, reporting the failing inputs via panic.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -1.0f32..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_len(v in crate::collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 20);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_form_compiles(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn determinism_across_rng_instances() {
        use crate::Strategy;
        let strat = crate::collection::vec(0u32..100, 5..10);
        let a = strat.generate(&mut crate::rng_for("k"));
        let b = strat.generate(&mut crate::rng_for("k"));
        assert_eq!(a, b);
    }
}
