//! Offline stand-in for `serde_derive`.
//!
//! Real `serde_derive` builds on `syn`/`quote`, which are unavailable in
//! this offline build environment, so these derives parse the item's token
//! stream by hand. They support exactly the shapes the workspace declares:
//!
//! - structs with named fields (objects),
//! - tuple structs (newtype for arity 1, arrays otherwise),
//! - enums with unit variants only (strings).
//!
//! Anything else — generics, data-carrying enum variants, `#[serde(...)]`
//! attributes — is rejected with a compile error rather than silently
//! mis-serialized.
#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the workspace `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives the workspace `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

/// The shapes we can derive for.
enum Shape {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(T, U);` — field count.
    Tuple(usize),
    /// `enum E { A, B }` — variant names.
    UnitEnum(Vec<String>),
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            let escaped = msg.replace('"', "\\\"");
            return format!("compile_error!(\"{escaped}\");")
                .parse()
                .expect("compile_error tokens parse");
        }
    };
    let body = if serialize {
        gen_serialize(&name, &shape)
    } else {
        gen_deserialize(&name, &shape)
    };
    body.parse().expect("generated impl parses")
}

/// Parses `[attrs] [vis] (struct|enum) Name <body>` into name + shape.
fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);

    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "derive(Serialize/Deserialize) stub does not support generics on `{name}`"
            ));
        }
    }

    let shape = match (kind.as_str(), iter.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream())?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::UnitEnum(parse_unit_variants(g.stream(), &name)?)
        }
        (k, other) => {
            return Err(format!(
                "derive stub cannot handle `{k}` item `{name}` with body {other:?}"
            ))
        }
    };
    Ok((name, shape))
}

/// Skips any number of `#[...]` attributes and a `pub`/`pub(...)` prefix.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
}

/// Extracts field names from a named-struct body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{name}`, got {other:?}")),
        }
        fields.push(name);
        // Consume the type: everything up to a comma at angle-depth 0.
        // Generic argument lists are not token groups, so `<`/`>` depth has
        // to be tracked by hand; `->`, shifts, and comparisons cannot occur
        // in field-type position.
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    Ok(fields)
}

/// Counts fields of a tuple-struct body (top-level commas).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tok in body {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_token = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token = true;
    }
    count + usize::from(saw_token)
}

/// Extracts variant names, rejecting data-carrying variants.
fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        match iter.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            other => {
                return Err(format!(
                    "derive stub only supports unit variants; `{enum_name}::{name}` \
                     is followed by {other:?}"
                ))
            }
        }
    }
    Ok(variants)
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!("::serde::Value::Object(vec![{pushes}])")
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(vec![{items}])")
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!("::serde::Value::Str(match self {{ {arms} }}.to_string())")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(value.get_field(\"{f}\")?)?,")
                })
                .collect();
            format!("::std::result::Result::Ok(Self {{ {inits} }})")
        }
        Shape::Tuple(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(value)?))".to_string()
        }
        Shape::Tuple(n) => {
            let elems: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} => \
                         ::std::result::Result::Ok(Self({elems})),\n\
                     other => ::std::result::Result::Err(::serde::Error::new(format!(\n\
                         \"expected {n}-element array for {name}, got {{}}\", other.kind()))),\n\
                 }}"
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::new(format!(\n\
                             \"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     other => ::std::result::Result::Err(::serde::Error::new(format!(\n\
                         \"expected string for {name}, got {{}}\", other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
