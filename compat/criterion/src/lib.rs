//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the surface the `sisg-bench` suites use: [`Criterion`],
//! [`BenchmarkGroup`] with `measurement_time`/`sample_size`,
//! `bench_function`/`bench_with_input`, [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a simple calibrated wall-clock loop printing mean
//! ns/iter — no statistical analysis, outlier detection, or HTML
//! reports. Good enough for the "within noise" regression checks the
//! workspace runs; use real criterion for publication-grade numbers.
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: Duration::from_secs(1),
            _criterion: self,
        }
    }

    /// Registers a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, Duration::from_secs(1), &mut f);
        self
    }
}

/// A named collection of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Accepted for compatibility; the stub sizes runs by wall-clock
    /// budget only.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark identified by `id` (a string or [`BenchmarkId`]).
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.measurement_time, &mut f);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<S: Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            budget: self.measurement_time,
            ns_per_iter: 0.0,
        };
        f(&mut bencher, input);
        report(&label, bencher.ns_per_iter);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count that fits
    /// the measurement budget, then measuring a batched run.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibrate: grow the batch until it costs >= ~1% of the budget.
        let mut batch: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.budget / 100 || batch >= 1 << 30 {
                break elapsed.as_nanos() as f64 / batch as f64;
            }
            batch = batch.saturating_mul(2);
        };

        // Measure: run full batches until the budget is spent.
        let rounds = ((self.budget.as_nanos() as f64 / (per_iter_ns * batch as f64).max(1.0))
            as u64)
            .clamp(1, 1000);
        let start = Instant::now();
        for _ in 0..rounds {
            for _ in 0..batch {
                black_box(routine());
            }
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / (rounds * batch) as f64;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, budget: Duration, f: &mut F) {
    let mut bencher = Bencher {
        budget,
        ns_per_iter: 0.0,
    };
    f(&mut bencher);
    report(label, bencher.ns_per_iter);
}

fn report(label: &str, ns_per_iter: f64) {
    if ns_per_iter >= 1_000_000.0 {
        println!("{label:<48} {:>12.3} ms/iter", ns_per_iter / 1_000_000.0);
    } else if ns_per_iter >= 1_000.0 {
        println!("{label:<48} {:>12.3} us/iter", ns_per_iter / 1_000.0);
    } else {
        println!("{label:<48} {ns_per_iter:>12.1} ns/iter");
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs this group's benchmarks.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.measurement_time(Duration::from_millis(20));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("dot", 128).to_string(), "dot/128");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
