//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no network access, so the workspace patches
//! `serde` to this crate. It deliberately implements a much smaller model
//! than real serde: serialization goes through an owned [`Value`] tree
//! (the only format the workspace uses is JSON via the sibling
//! `serde_json` stub). The `derive` feature re-exports hand-rolled
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros that cover the
//! shapes this workspace declares: named-field structs, tuple structs, and
//! unit-variant enums.
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization tree (JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (any JSON number without sign, dot, or exponent).
    U64(u64),
    /// Signed integer (negative JSON numbers without dot or exponent).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object.
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) => "unsigned integer",
            Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// (De)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can serialize itself into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    other => return Err(Error::new(format!(
                        "expected unsigned integer, got {}", other.kind()
                    ))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| Error::new(format!("{u} overflows i64")))?,
                    other => return Err(Error::new(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(u) => Ok(*u as $t),
                    Value::I64(i) => Ok(*i as $t),
                    other => Err(Error::new(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::new(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// `Value` passes through both traits unchanged, so callers can work with
// dynamically shaped JSON (e.g. merging result files whose schemas differ)
// without declaring a struct per file.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-5i32).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let a: [u32; 3] = [7, 8, 9];
        assert_eq!(<[u32; 3]>::from_value(&a.to_value()).unwrap(), a);
    }

    #[test]
    fn integer_widening_is_accepted() {
        // "2.0" prints as "2" and parses back as an integer; float fields
        // must accept it.
        assert_eq!(f64::from_value(&Value::U64(2)).unwrap(), 2.0);
        assert_eq!(f32::from_value(&Value::I64(-3)).unwrap(), -3.0);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(String::from_value(&Value::U64(1)).is_err());
    }
}
