//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! Implements the surface the embedding codec uses: [`BytesMut`] as an
//! append-only builder, [`Bytes`] as an immutable byte container, the
//! little-endian getters of [`Buf`] for `&[u8]`, and the little-endian
//! putters of [`BufMut`]. No refcounted zero-copy slicing — the codec
//! never splits buffers.
#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable, contiguous byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor, little-endian getters included.
///
/// Implemented for `&[u8]`, which advances by reassigning the slice —
/// exactly how the real crate's blanket impl behaves.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Skips `cnt` bytes.
    ///
    /// # Panics
    /// Panics when fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);
    /// Copies `dst.len()` bytes out and advances.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32` and advances.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `f32` and advances.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `u64` and advances.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write access to a growable byte buffer, little-endian putters included.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"hd");
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_f32_le(1.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        cursor.advance(2);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_f32_le(), 1.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn reading_past_end_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}
