//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate — just the [`channel`] module, which is all the workspace uses.
#![warn(missing_docs)]

/// Multi-producer multi-consumer FIFO channels.
///
/// Backed by a `Mutex<VecDeque>` + two `Condvar`s rather than crossbeam's
/// lock-free queue: the message-passing TNS engine moves thousands of
/// messages per run, not millions per second, so the simpler
/// implementation is far below measurement noise there.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<Queue<T>>,
        /// Signalled when a message arrives or the last sender leaves.
        ready: Condvar,
        /// Signalled when space frees up or the last receiver leaves
        /// (bounded channels only).
        space: Condvar,
        /// `None` = unbounded.
        capacity: Option<usize>,
    }

    struct Queue<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (mpmc, like crossbeam and unlike
    /// `std::sync::mpsc`).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without a `T: Debug` bound, so
    // `.expect()` works on channels of non-Debug messages.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and currently at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// True when the failure was a full queue (backpressure), not a
        /// disconnect.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("TrySendError::Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// No message available and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message.
        Timeout,
        /// No message available and every sender is gone.
        Disconnected,
    }

    fn channel_with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel_with_capacity(None)
    }

    /// Creates a bounded mpmc channel holding at most `cap` messages.
    /// [`Sender::send`] blocks while full; [`Sender::try_send`] returns
    /// [`TrySendError::Full`] instead. Zero-capacity rendezvous channels
    /// are not supported by this stub.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "rendezvous (capacity 0) channels not supported");
        channel_with_capacity(Some(cap))
    }

    impl<T> Sender<T> {
        /// Enqueues a message, blocking while a bounded channel is full;
        /// fails only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if queue.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if queue.items.len() >= cap => {
                        queue = self.shared.space.wait(queue).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            queue.items.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Enqueues a message without blocking: a full bounded channel
        /// returns [`TrySendError::Full`] with the message handed back.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            if queue.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.shared.capacity {
                if queue.items.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            queue.items.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel poisoned").senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            queue.senders -= 1;
            if queue.senders == 0 {
                drop(queue);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        fn notify_space(&self) {
            if self.shared.capacity.is_some() {
                self.shared.space.notify_one();
            }
        }

        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(item) = queue.items.pop_front() {
                    drop(queue);
                    self.notify_space();
                    return Ok(item);
                }
                if queue.senders == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).expect("channel poisoned");
            }
        }

        /// Blocks until a message arrives, every sender is dropped, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(item) = queue.items.pop_front() {
                    drop(queue);
                    self.notify_space();
                    return Ok(item);
                }
                if queue.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, _) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .expect("channel poisoned");
                queue = q;
            }
        }

        /// Dequeues a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            match queue.items.pop_front() {
                Some(item) => {
                    drop(queue);
                    self.notify_space();
                    Ok(item)
                }
                None if queue.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            queue.receivers -= 1;
            if queue.receivers == 0 {
                drop(queue);
                self.shared.space.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observable() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            let (tx2, rx2) = unbounded::<u32>();
            drop(rx2);
            assert_eq!(tx2.send(9), Err(SendError(9)));
        }

        #[test]
        fn crosses_threads() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0u64;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            handle.join().unwrap();
            assert_eq!(sum, 4950);
        }

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded(2);
            assert!(tx.try_send(1).is_ok());
            assert!(tx.try_send(2).is_ok());
            match tx.try_send(3) {
                Err(TrySendError::Full(v)) => assert_eq!(v, 3),
                other => panic!("expected Full, got {other:?}"),
            }
            assert_eq!(rx.recv(), Ok(1));
            assert!(tx.try_send(3).is_ok(), "recv frees a slot");
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn bounded_send_blocks_until_space() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let handle = std::thread::spawn(move || {
                // Blocks until the receiver drains the first message.
                tx.send(2).unwrap();
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            handle.join().unwrap();
        }

        #[test]
        fn try_send_disconnected_returns_message() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            match tx.try_send(7) {
                Err(e @ TrySendError::Disconnected(_)) => {
                    assert!(!e.is_full());
                    assert_eq!(e.into_inner(), 7);
                }
                other => panic!("expected Disconnected, got {other:?}"),
            }
        }

        #[test]
        fn recv_timeout_times_out_and_delivers() {
            let (tx, rx) = bounded::<u32>(4);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(11).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(11));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
