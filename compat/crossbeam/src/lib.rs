//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate — just the [`channel`] module, which is all the workspace uses.
#![warn(missing_docs)]

/// Multi-producer multi-consumer FIFO channels.
///
/// Backed by a `Mutex<VecDeque>` + `Condvar` rather than crossbeam's
/// lock-free queue: the message-passing TNS engine moves thousands of
/// messages per run, not millions per second, so the simpler
/// implementation is far below measurement noise there.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Queue<T>>,
        ready: Condvar,
    }

    struct Queue<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (mpmc, like crossbeam and unlike
    /// `std::sync::mpsc`).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without a `T: Debug` bound, so
    // `.expect()` works on channels of non-Debug messages.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// No message available and every sender is gone.
        Disconnected,
    }

    /// Creates an unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            if queue.receivers == 0 {
                return Err(SendError(value));
            }
            queue.items.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel poisoned").senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            queue.senders -= 1;
            if queue.senders == 0 {
                drop(queue);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(item) = queue.items.pop_front() {
                    return Ok(item);
                }
                if queue.senders == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).expect("channel poisoned");
            }
        }

        /// Dequeues a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            match queue.items.pop_front() {
                Some(item) => Ok(item),
                None if queue.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observable() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            let (tx2, rx2) = unbounded::<u32>();
            drop(rx2);
            assert_eq!(tx2.send(9), Err(SendError(9)));
        }

        #[test]
        fn crosses_threads() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0u64;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            handle.join().unwrap();
            assert_eq!(sum, 4950);
        }
    }
}
