//! End-to-end integration: corpus generation → enrichment → training →
//! retrieval → evaluation, across all model families.

use taobao_sisg::cf::{CfConfig, CfModel};
use taobao_sisg::core::{Recommender, SisgModel, Variant};
use taobao_sisg::corpus::split::{NextItemSplit, SplitStage};
use taobao_sisg::corpus::{CorpusConfig, GeneratedCorpus, ItemId};
use taobao_sisg::eges::{EgesConfig, EgesModel, WalkConfig};
use taobao_sisg::eval::{evaluate_hit_rates, ItemRetriever};
use taobao_sisg::sgns::SgnsConfig;

fn corpus() -> GeneratedCorpus {
    GeneratedCorpus::generate(CorpusConfig::tiny())
}

fn sgns() -> SgnsConfig {
    SgnsConfig {
        dim: 16,
        window: 3,
        negatives: 5,
        epochs: 2,
        ..Default::default()
    }
}

#[test]
fn full_offline_protocol_runs_and_si_helps() {
    let corpus = corpus();
    let split = NextItemSplit::default().split(&corpus.sessions, SplitStage::Test);
    assert!(split.eval.len() > 200, "protocol needs evaluation cases");

    let ks = [10usize, 50];
    let mut results = Vec::new();
    for variant in [Variant::Sgns, Variant::SisgFU, Variant::SisgFUD] {
        let (model, _) = SisgModel::train_on_sessions(
            &split.train,
            &corpus.catalog,
            &corpus.users,
            corpus.config.n_items,
            variant,
            &sgns(),
        )
        .expect("train");
        results.push(evaluate_hit_rates(variant.name(), &model, &split.eval, &ks));
    }
    let hr = |name: &str| {
        results
            .iter()
            .find(|r| r.model == name)
            .unwrap()
            .at(50)
            .unwrap()
    };
    // Headline Table III ordering on the tiny corpus.
    assert!(
        hr("SISG-F-U-D") > hr("SGNS"),
        "full SISG {} must beat plain SGNS {}",
        hr("SISG-F-U-D"),
        hr("SGNS")
    );
    for r in &results {
        assert!(r.hr.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(r.hr[0] <= r.hr[1], "HR must be monotone in K");
    }
}

#[test]
fn every_retriever_family_answers_the_same_query() {
    let corpus = corpus();
    let query = ItemId(1);
    let k = 10;

    let (sisg, _) = SisgModel::train(&corpus, Variant::SisgF, &sgns()).expect("train");
    let eges = EgesModel::train(
        &corpus,
        &EgesConfig {
            dim: 16,
            epochs: 1,
            negatives: 5,
            walk: WalkConfig {
                walks_per_node: 2,
                walk_length: 8,
                seed: 1,
            },
            ..Default::default()
        },
    );
    let cf = CfModel::train(
        &corpus.sessions,
        corpus.config.n_items,
        &CfConfig::default(),
    );

    for (name, list) in [
        ("sisg", sisg.retrieve(query, k)),
        ("eges", eges.retrieve(query, k)),
        ("cf", cf.retrieve(query, k)),
    ] {
        assert!(!list.is_empty(), "{name} returned nothing");
        assert!(list.len() <= k);
        assert!(
            !list.contains(&query),
            "{name} must not recommend the query item"
        );
        let unique: std::collections::HashSet<_> = list.iter().collect();
        assert_eq!(unique.len(), list.len(), "{name} returned duplicates");
        for item in &list {
            assert!(item.0 < corpus.config.n_items);
        }
    }
}

#[test]
fn recommender_round_trips_through_codec() {
    use taobao_sisg::embedding::codec;
    let corpus = corpus();
    let rec = Recommender::train(&corpus, Variant::SisgFUD, &sgns()).expect("train");
    let blob = codec::encode(rec.model().store());
    let store = codec::decode(&blob).expect("decode");
    let served = SisgModel::from_store(Variant::SisgFUD, rec.model().space().clone(), store)
        .expect("store covers space");
    for q in [ItemId(0), ItemId(5), ItemId(42)] {
        assert_eq!(
            rec.model().retrieve(q, 20),
            served.retrieve(q, 20),
            "served candidates diverge for query {q:?}"
        );
    }
}

#[test]
fn directional_variant_encodes_click_order() {
    let corpus = corpus();
    // This test measures *adjacent* click transitions, so train with an
    // adjacency-scale window: wider windows legitimately also draw
    // longer-range right-context pairs (users browse back and forth),
    // which dilutes the forward-vs-reverse margin on adjacent pairs.
    let cfg = SgnsConfig {
        window: 1,
        ..sgns()
    };
    let (model, _) = SisgModel::train(&corpus, Variant::SisgFUD, &cfg).expect("train");
    // Count frequent forward transitions; the model should usually score
    // them above their reverses.
    let mut forward_wins = 0u32;
    let mut total = 0u32;
    let mut counts = std::collections::HashMap::new();
    for s in corpus.sessions.iter() {
        for w in s.items.windows(2) {
            *counts.entry((w[0], w[1])).or_insert(0u32) += 1;
        }
    }
    for (&(a, b), &n) in &counts {
        let rev = counts.get(&(b, a)).copied().unwrap_or(0);
        if n >= 8 && n >= rev * 3 {
            total += 1;
            if model.similarity(a, b) > model.similarity(b, a) {
                forward_wins += 1;
            }
        }
    }
    assert!(
        total >= 10,
        "need enough strongly-directional pairs, got {total}"
    );
    assert!(
        forward_wins as f64 / total as f64 > 0.6,
        "directional model ranks forward above reverse in only {forward_wins}/{total}"
    );
}
