//! Integration: the serving layer and the extended evaluation metrics,
//! wired across crates the way a production consumer would use them.

use taobao_sisg::core::{MatchingService, ServingConfig, SisgModel, Variant};
use taobao_sisg::corpus::split::{NextItemSplit, SplitStage};
use taobao_sisg::corpus::{CorpusConfig, GeneratedCorpus, ItemId};
use taobao_sisg::eval::metrics::evaluate_ranking;
use taobao_sisg::eval::significance::{hit_indicators, paired_bootstrap};
use taobao_sisg::eval::ItemRetriever;
use taobao_sisg::sgns::SgnsConfig;

fn setup() -> (GeneratedCorpus, SisgModel, Vec<u64>) {
    let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
    let (model, _) = SisgModel::train(
        &corpus,
        Variant::SisgFU,
        &SgnsConfig {
            dim: 16,
            window: 3,
            negatives: 3,
            epochs: 2,
            ..Default::default()
        },
    )
    .expect("train");
    let mut clicks = vec![0u64; corpus.config.n_items as usize];
    for s in corpus.sessions.iter() {
        for it in s.items {
            clicks[it.index()] += 1;
        }
    }
    (corpus, model, clicks)
}

#[test]
fn serving_layer_matches_direct_retrieval_for_warm_items() {
    let (corpus, model, clicks) = setup();
    // Probe an item that is actually warm (zero-click items are served
    // through the Eq. 6 cold path, which legitimately differs).
    let warm = (0..corpus.config.n_items)
        .map(ItemId)
        .find(|i| clicks[i.index()] >= 1)
        .expect("some item was clicked");
    let direct: Vec<ItemId> = model.retrieve(warm, 10);
    let svc = MatchingService::build(
        model,
        corpus.users.clone(),
        &clicks,
        ServingConfig {
            k: 20,
            min_clicks_for_warm: 1,
        },
    )
    .expect("build");
    assert!(!svc.is_cold(warm));
    let si = *corpus.catalog.si_values(warm);
    let served: Vec<ItemId> = svc
        .candidates(warm, &si, 10)
        .expect("known item")
        .into_iter()
        .map(|r| r.item)
        .collect();
    assert_eq!(
        direct, served,
        "precomputed lists must equal live retrieval"
    );
    assert_eq!(svc.stats().requests, 1);
}

#[test]
fn ranking_metrics_agree_with_hit_rates() {
    let (corpus, model, clicks) = setup();
    let split = NextItemSplit::default().split(&corpus.sessions, SplitStage::Test);
    let k = 20;
    let report = evaluate_ranking(
        "sisg",
        &model,
        &split.eval,
        k,
        &clicks,
        corpus.config.n_items,
    );
    // NDCG and MRR are bounded by HR@k (they zero on the same misses).
    let hr = taobao_sisg::eval::evaluate_hit_rates("sisg", &model, &split.eval, &[k]).hr[0];
    assert!(report.ndcg <= hr + 1e-9);
    assert!(report.mrr <= hr + 1e-9);
    assert!(report.ndcg > 0.0, "model must hit sometimes");
    assert!((0.0..=1.0).contains(&report.coverage));
    assert!((0.0..=1.0).contains(&report.tail_exposure));
}

#[test]
fn bootstrap_confirms_large_model_gaps_only() {
    let (corpus, model, _) = setup();
    let split = NextItemSplit::default().split(&corpus.sessions, SplitStage::Test);
    let cases = &split.eval[..split.eval.len().min(400)];
    let hits = hit_indicators(&model, cases, 20);
    // Model vs itself: never significant.
    let same = paired_bootstrap(&hits, &hits, 300, 0.95, 1);
    assert!(!same.significant());
    // Model vs a strawman that always misses: decisively significant.
    let zeros = vec![0.0; hits.len()];
    let gap = paired_bootstrap(&hits, &zeros, 300, 0.95, 1);
    assert!(gap.significant());
    assert!(gap.delta > 0.1, "the model must hit more than never");
}
