//! Property-based tests of the HBGP partitioner over arbitrary corpora.

use proptest::prelude::*;
use taobao_sisg::corpus::schema::SchemaCardinalities;
use taobao_sisg::corpus::{Corpus, ItemCatalog, ItemId, LeafCategoryId, UserId};
use taobao_sisg::distributed::partition::Partitioner;
use taobao_sisg::distributed::{HashPartitioner, HbgpPartitioner};

/// Builds a deterministic catalog plus an arbitrary session list over it.
fn catalog(n_items: u32) -> ItemCatalog {
    ItemCatalog::generate(n_items, SchemaCardinalities::for_items(n_items), 7)
}

fn sessions_strategy(n_items: u32) -> impl Strategy<Value = Corpus> {
    proptest::collection::vec(proptest::collection::vec(0..n_items, 2..10), 1..60).prop_map(
        move |raw| {
            let mut c = Corpus::new();
            for (u, items) in raw.into_iter().enumerate() {
                let items: Vec<ItemId> = items.into_iter().map(ItemId).collect();
                c.push(UserId(u as u32), &items);
            }
            c
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// HBGP output is a total assignment into `workers` partitions and
    /// never splits a leaf category.
    #[test]
    fn hbgp_assignment_is_valid(
        sessions in sessions_strategy(300),
        workers in 1usize..9,
    ) {
        let cat = catalog(300);
        let assign = HbgpPartitioner::default().assign_items(&sessions, &cat, 300, workers);
        prop_assert_eq!(assign.len(), 300);
        prop_assert!(assign.iter().all(|&o| (o as usize) < workers));
        // Whole categories stay together.
        for leaf in 0..cat.n_leaf_categories() {
            let members = cat.items_in_category(LeafCategoryId(leaf));
            if let Some(first) = members.first() {
                let owner = assign[first.index()];
                prop_assert!(
                    members.iter().all(|m| assign[m.index()] == owner),
                    "category {} split", leaf
                );
            }
        }
    }

    /// HBGP never produces a worse cut than hashing on category-coherent
    /// synthetic traffic (the regime it is designed for), measured on
    /// adjacent transitions.
    #[test]
    fn hbgp_cut_is_no_worse_than_hash_on_coherent_sessions(
        seed in any::<u64>(),
        workers in 2usize..6,
    ) {
        // Category-coherent sessions: each stays within one leaf category.
        let cat = catalog(300);
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sessions = Corpus::new();
        for u in 0..80u32 {
            let leaf = loop {
                let l = LeafCategoryId(rng.gen_range(0..cat.n_leaf_categories()));
                if cat.items_in_category(l).len() >= 2 {
                    break l;
                }
            };
            let members = cat.items_in_category(leaf);
            let items: Vec<ItemId> = (0..6)
                .map(|_| members[rng.gen_range(0..members.len())])
                .collect();
            sessions.push(UserId(u), &items);
        }
        let cut = |assign: &[u16]| -> u64 {
            let mut cut = 0;
            for s in sessions.iter() {
                for w in s.items.windows(2) {
                    if assign[w[0].index()] != assign[w[1].index()] {
                        cut += 1;
                    }
                }
            }
            cut
        };
        let hbgp = HbgpPartitioner::default().assign_items(&sessions, &cat, 300, workers);
        let hash = HashPartitioner.assign_items(&sessions, &cat, 300, workers);
        prop_assert!(
            cut(&hbgp) <= cut(&hash),
            "hbgp cut {} > hash cut {}", cut(&hbgp), cut(&hash)
        );
    }

    /// With one worker everything is local regardless of input.
    #[test]
    fn single_worker_is_always_local(sessions in sessions_strategy(100)) {
        let cat = catalog(100);
        let assign = HbgpPartitioner::default().assign_items(&sessions, &cat, 100, 1);
        prop_assert!(assign.iter().all(|&o| o == 0));
    }
}
