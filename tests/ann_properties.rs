//! Property-based tests of the ANN substrate: index invariants that must
//! hold for arbitrary vector sets.

use proptest::prelude::*;
use taobao_sisg::ann::{AnnIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex};
use taobao_sisg::corpus::TokenId;
use taobao_sisg::embedding::{retrieve_top_k, Matrix};

fn matrix_strategy(max_rows: usize, dim: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, dim..=max_rows * dim).prop_map(move |mut v| {
        let rows = v.len() / dim;
        v.truncate(rows * dim);
        Matrix::from_data(rows, dim, v)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// IVF with every cell probed is exactly brute force, for any data.
    #[test]
    fn ivf_full_probe_is_exact(m in matrix_strategy(60, 4), k in 1usize..8) {
        let nlist = 8;
        let idx = IvfIndex::build(&m, IvfConfig { nlist, ..Default::default() });
        let query: Vec<f32> = m.row(0).to_vec();
        let approx: Vec<u32> = idx
            .search_with_probes(&query, k, nlist)
            .iter()
            .map(|h| h.id.0)
            .collect();
        let exact: Vec<u32> =
            retrieve_top_k(&query, &m, (0..m.rows() as u32).map(TokenId), k, None)
                .iter()
                .map(|n| n.token.0)
                .collect();
        prop_assert_eq!(approx, exact);
    }

    /// Both index types return unique ids within bounds, sorted by score.
    #[test]
    fn results_are_wellformed(m in matrix_strategy(50, 4), k in 1usize..12) {
        let query: Vec<f32> = m.row(m.rows() / 2).to_vec();
        let ivf = IvfIndex::build(&m, IvfConfig { nlist: 6, nprobe: 3, ..Default::default() });
        let hnsw = HnswIndex::build(&m, HnswConfig { m: 4, ..Default::default() });
        for (name, hits) in [
            ("ivf", ivf.search(&query, k)),
            ("hnsw", hnsw.search(&query, k)),
        ] {
            prop_assert!(hits.len() <= k, "{} returned too many", name);
            let mut seen = std::collections::HashSet::new();
            for w in hits.windows(2) {
                prop_assert!(w[0].score >= w[1].score, "{} unsorted", name);
            }
            for h in &hits {
                prop_assert!((h.id.0 as usize) < m.rows(), "{} id out of range", name);
                prop_assert!(seen.insert(h.id), "{} duplicate id", name);
            }
        }
    }

    /// HNSW search never returns fewer than min(k, n) hits — the graph is
    /// connected enough to enumerate the corpus.
    #[test]
    fn hnsw_fills_k(m in matrix_strategy(40, 3), k in 1usize..10) {
        let idx = HnswIndex::build(&m, HnswConfig { m: 4, ef_search: 40, ..Default::default() });
        let hits = idx.search(m.row(0), k);
        prop_assert_eq!(hits.len(), k.min(m.rows()));
    }
}
