//! Integration: the distributed engine must (a) learn embeddings of
//! comparable retrieval quality to the single-process trainer, and (b)
//! show the communication structure the paper's design targets.

use taobao_sisg::core::{SisgModel, Variant};
use taobao_sisg::corpus::split::{NextItemSplit, SplitStage};
use taobao_sisg::corpus::vocab::TokenSpace;
use taobao_sisg::corpus::{CorpusConfig, EnrichOptions, EnrichedCorpus, GeneratedCorpus, TokenId};
use taobao_sisg::distributed::runtime::{train_distributed, PartitionStrategy};
use taobao_sisg::distributed::DistConfig;
use taobao_sisg::embedding::retrieve_top_k;
use taobao_sisg::eval::evaluate_hit_rates;
use taobao_sisg::sgns::SgnsConfig;

fn corpus() -> GeneratedCorpus {
    GeneratedCorpus::generate(CorpusConfig::tiny())
}

#[test]
fn distributed_hit_rate_is_comparable_to_single_process() {
    let corpus = corpus();
    let split = NextItemSplit::default().split(&corpus.sessions, SplitStage::Test);

    // Single-process reference (plain SGNS variant).
    let sgns = SgnsConfig {
        dim: 16,
        window: 3,
        negatives: 5,
        epochs: 2,
        ..Default::default()
    };
    let (single, _) = SisgModel::train_on_sessions(
        &split.train,
        &corpus.catalog,
        &corpus.users,
        corpus.config.n_items,
        Variant::Sgns,
        &sgns,
    )
    .expect("train");

    // Distributed run over the same (un-enriched) sequences.
    let enriched = EnrichedCorpus::build_from_sessions(
        &split.train,
        &corpus.catalog,
        &corpus.users,
        corpus.config.n_items,
        EnrichOptions::NONE,
    );
    let dist_cfg = DistConfig {
        workers: 4,
        dim: 16,
        window: 3,
        negatives: 5,
        epochs: 2,
        hot_set_size: 32,
        sync_interval: 400,
        strategy: PartitionStrategy::Hbgp { beta: 1.2 },
        ..Default::default()
    };
    let (store, report) = train_distributed(&enriched, &split.train, &corpus.catalog, &dist_cfg);
    let space = TokenSpace::new(
        corpus.config.n_items,
        corpus.catalog.cardinalities(),
        corpus.users.n_user_types(),
    );
    let distributed =
        SisgModel::from_store(Variant::Sgns, space, store).expect("store covers space");

    let ks = [20usize];
    let hr_single = evaluate_hit_rates("single", &single, &split.eval, &ks).hr[0];
    let hr_dist = evaluate_hit_rates("distributed", &distributed, &split.eval, &ks).hr[0];
    assert!(
        hr_dist > hr_single * 0.7,
        "distributed HR@20 {hr_dist} too far below single-process {hr_single}"
    );
    assert!(report.total_pairs() > 10_000);
}

#[test]
fn comm_structure_matches_design_claims() {
    let corpus = corpus();
    let enriched = EnrichedCorpus::build(&corpus, EnrichOptions::FULL);
    let run = |strategy, hot| {
        let cfg = DistConfig {
            workers: 4,
            dim: 8,
            window: 4,
            negatives: 2,
            epochs: 1,
            hot_set_size: hot,
            sync_interval: 500,
            strategy,
            ..Default::default()
        };
        train_distributed(&enriched, &corpus.sessions, &corpus.catalog, &cfg).1
    };
    let hbgp_q = run(PartitionStrategy::Hbgp { beta: 1.2 }, 64);
    let hash_q = run(PartitionStrategy::Hash, 64);
    let hbgp_noq = run(PartitionStrategy::Hbgp { beta: 1.2 }, 0);

    // HBGP cuts cross-worker traffic relative to hashing.
    assert!(hbgp_q.remote_fraction() < hash_q.remote_fraction());
    // The hot set removes remote pairs (SI tokens dominate endpoints).
    assert!(hbgp_q.remote_fraction() < hbgp_noq.remote_fraction());
    // Sync costs exist exactly when Q does.
    assert!(hbgp_q.sync_comm_bytes > 0);
    assert_eq!(hbgp_noq.sync_comm_bytes, 0);
}

#[test]
fn distributed_store_serves_all_token_kinds() {
    let corpus = corpus();
    let enriched = EnrichedCorpus::build(&corpus, EnrichOptions::FULL);
    let cfg = DistConfig {
        workers: 2,
        dim: 8,
        window: 3,
        negatives: 2,
        epochs: 1,
        hot_set_size: 16,
        sync_interval: 500,
        ..Default::default()
    };
    let (store, _) = train_distributed(&enriched, &corpus.sessions, &corpus.catalog, &cfg);
    assert_eq!(store.n_tokens(), enriched.space().len());
    // Retrieval over the full joint space works.
    let hits = retrieve_top_k(
        store.input(TokenId(0)),
        store.input_matrix(),
        (0..store.n_tokens() as u32).map(TokenId),
        5,
        Some(TokenId(0)),
    );
    assert_eq!(hits.len(), 5);
}
