//! Integration: the two cold-start inference paths of Section IV-C,
//! exercised with genuinely withheld items and demographic-only users.

use std::collections::HashSet;
use taobao_sisg::core::cold_start::{
    average_user_types, cold_item_recommendations, cold_user_recommendations,
};
use taobao_sisg::core::{SisgModel, Variant};
use taobao_sisg::corpus::{Corpus, CorpusConfig, GeneratedCorpus, ItemId, UserTypeId};
use taobao_sisg::sgns::SgnsConfig;

fn setup() -> (GeneratedCorpus, Vec<ItemId>, SisgModel) {
    let corpus = GeneratedCorpus::generate(CorpusConfig::tiny());
    // Withhold ten items entirely.
    let withheld: Vec<ItemId> = (0..10).map(|i| ItemId(390 + i)).collect();
    let cold: HashSet<ItemId> = withheld.iter().copied().collect();
    let mut train = Corpus::new();
    for s in corpus.sessions.iter() {
        if !s.items.iter().any(|it| cold.contains(it)) {
            train.push(s.user, s.items);
        }
    }
    let (model, _) = SisgModel::train_on_sessions(
        &train,
        &corpus.catalog,
        &corpus.users,
        corpus.config.n_items,
        Variant::SisgFU,
        &SgnsConfig {
            dim: 16,
            window: 3,
            negatives: 5,
            epochs: 2,
            ..Default::default()
        },
    )
    .expect("train");
    (corpus, withheld, model)
}

#[test]
fn withheld_items_get_category_coherent_neighbors() {
    let (corpus, withheld, model) = setup();
    let k = 10;
    let mut coherent = 0usize;
    let mut total = 0usize;
    for &item in &withheld {
        let recs =
            cold_item_recommendations(&model, corpus.catalog.si_values(item), k).expect("valid SI");
        assert_eq!(recs.len(), k);
        assert!(
            recs.iter().all(|n| !withheld.contains(&ItemId(n.token.0))),
            "cold recommendations should be trained items"
        );
        let cat = corpus.catalog.leaf_category(item);
        coherent += recs
            .iter()
            .filter(|n| corpus.catalog.leaf_category(ItemId(n.token.0)) == cat)
            .count();
        total += k;
    }
    let rate = coherent as f64 / total as f64;
    assert!(
        rate > 0.5,
        "only {rate:.2} of cold-item neighbors share the leaf category"
    );
}

#[test]
fn cold_item_beats_untrained_vector() {
    let (corpus, withheld, model) = setup();
    // The withheld item's own (untrained, random-init) vector retrieves
    // junk; Eq. (6) retrieves its category. Compare coherence.
    let item = withheld[0];
    let cat = corpus.catalog.leaf_category(item);
    let k = 10;
    let untrained = model.similar_items(item, k);
    let coherent_untrained = untrained
        .iter()
        .filter(|n| corpus.catalog.leaf_category(ItemId(n.token.0)) == cat)
        .count();
    let cold =
        cold_item_recommendations(&model, corpus.catalog.si_values(item), k).expect("valid SI");
    let coherent_cold = cold
        .iter()
        .filter(|n| corpus.catalog.leaf_category(ItemId(n.token.0)) == cat)
        .count();
    assert!(
        coherent_cold > coherent_untrained,
        "Eq. 6 ({coherent_cold}/{k}) must beat the untrained vector \
         ({coherent_untrained}/{k})"
    );
}

#[test]
fn cold_user_vectors_average_matching_types_only() {
    let (corpus, _, model) = setup();
    // Averaging all female types must differ from all male types.
    let f = cold_user_recommendations(&model, &corpus.users, Some(0), None, None, 15)
        .expect("female types exist");
    let m = cold_user_recommendations(&model, &corpus.users, Some(1), None, None, 15)
        .expect("male types exist");
    assert_ne!(
        f.iter().map(|n| n.token).collect::<Vec<_>>(),
        m.iter().map(|n| n.token).collect::<Vec<_>>(),
        "gender-conditioned recommendations must differ"
    );
    // Impossible demographics yield a typed error, not garbage.
    assert!(cold_user_recommendations(&model, &corpus.users, Some(0), Some(99), None, 5).is_err());
}

#[test]
fn averaging_is_linear_in_inputs() {
    let (corpus, _, model) = setup();
    let types: Vec<UserTypeId> = (0..3).map(UserTypeId).collect();
    let avg = average_user_types(&model, &types).expect("known types");
    let mut manual = vec![0.0f32; model.store().dim()];
    for &ut in &types {
        let v = model.token_input(model.space().user_type(ut));
        for (m, &x) in manual.iter_mut().zip(v) {
            *m += x / 3.0;
        }
    }
    for (a, b) in avg.iter().zip(&manual) {
        assert!((a - b).abs() < 1e-5, "averaging mismatch: {a} vs {b}");
    }
    let _ = corpus;
}
