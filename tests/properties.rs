//! Property-based test suites over the core data structures and
//! invariants, spanning crates.

use proptest::prelude::*;
use taobao_sisg::corpus::schema::SchemaCardinalities;
use taobao_sisg::corpus::split::{NextItemSplit, SplitStage};
use taobao_sisg::corpus::vocab::{TokenSpace, VocabBuilder};
use taobao_sisg::corpus::{Corpus, ItemId, TokenId, UserId};
use taobao_sisg::embedding::codec;
use taobao_sisg::embedding::{EmbeddingStore, Matrix, TopK};

proptest! {
    /// Every token id in a generated space classifies back to exactly the
    /// constructor that produced it (layout is a bijection).
    #[test]
    fn token_space_roundtrip(n_items in 1u32..2_000, n_types in 0u32..500) {
        let cards = SchemaCardinalities::for_items(n_items);
        let space = TokenSpace::new(n_items, &cards, n_types);
        // Items.
        for raw in [0, n_items / 2, n_items - 1] {
            let t = space.item(ItemId(raw));
            prop_assert!(space.is_item(t));
        }
        // Full coverage: kind() is total over the space and describe()
        // never panics.
        let stride = (space.len() / 64).max(1);
        for idx in (0..space.len()).step_by(stride) {
            let t = TokenId(idx as u32);
            let _ = space.kind(t);
            prop_assert!(!space.describe(t).is_empty());
        }
    }

    /// The vocabulary counts exactly what was recorded.
    #[test]
    fn vocab_total_matches_records(counts in proptest::collection::vec(0u64..50, 1..20)) {
        let cards = SchemaCardinalities::for_items(100);
        let space = TokenSpace::new(100, &cards, 4);
        let mut b = VocabBuilder::new(space);
        let mut expected = 0;
        for (i, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                b.record(TokenId(i as u32));
                expected += 1;
            }
        }
        let v = b.build();
        prop_assert_eq!(v.total_tokens(), expected);
        for (i, &c) in counts.iter().enumerate() {
            prop_assert_eq!(v.freq(TokenId(i as u32)), c);
        }
    }

    /// Codec round-trips arbitrary matrices bit-exactly.
    #[test]
    fn codec_roundtrip(rows in 0usize..40, dim in 1usize..16, seed in any::<u64>()) {
        let store = EmbeddingStore::new(rows, dim, seed);
        let blob = codec::encode(&store);
        let back = codec::decode(&blob).unwrap();
        prop_assert_eq!(back.n_tokens(), rows);
        prop_assert_eq!(back.dim(), dim);
        prop_assert_eq!(
            back.input_matrix().as_slice(),
            store.input_matrix().as_slice()
        );
        prop_assert_eq!(
            back.output_matrix().as_slice(),
            store.output_matrix().as_slice()
        );
    }

    /// Decoding never panics on arbitrary bytes — it returns an error.
    #[test]
    fn codec_rejects_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = codec::decode(&bytes);
    }

    /// TopK keeps exactly the k best-scoring entries.
    #[test]
    fn topk_matches_sort(
        scores in proptest::collection::vec(-100i32..100, 1..60),
        k in 1usize..20,
    ) {
        let mut top = TopK::new(k);
        for (i, &s) in scores.iter().enumerate() {
            top.push(TokenId(i as u32), s as f32);
        }
        let got: Vec<f32> = top.into_sorted().iter().map(|n| n.score).collect();
        let mut want: Vec<f32> = scores.iter().map(|&s| s as f32).collect();
        want.sort_by(|a, b| b.partial_cmp(a).unwrap());
        want.truncate(k);
        prop_assert_eq!(got, want);
    }

    /// The next-item split conserves clicks and only removes suffixes.
    #[test]
    fn split_conserves_clicks(lens in proptest::collection::vec(1usize..12, 1..30)) {
        let mut corpus = Corpus::new();
        let mut next = 0u32;
        for (u, &len) in lens.iter().enumerate() {
            let items: Vec<ItemId> = (0..len)
                .map(|_| {
                    next += 1;
                    ItemId(next % 50)
                })
                .collect();
            corpus.push(UserId(u as u32), &items);
        }
        for stage in [SplitStage::Validation, SplitStage::Test] {
            let holdout = match stage {
                SplitStage::Validation => 2u64,
                SplitStage::Test => 1,
            };
            let split = NextItemSplit::default().split(&corpus, stage);
            prop_assert_eq!(
                split.train.total_clicks() + split.eval.len() as u64 * holdout,
                corpus.total_clicks()
            );
            // Each train sequence is a prefix of the original.
            for (i, s) in split.train.iter().enumerate() {
                let orig = corpus.session(i);
                prop_assert_eq!(s.user, orig.user);
                prop_assert_eq!(s.items, &orig.items[..s.items.len()]);
            }
        }
    }

    /// Matrix rows never alias: writing one row leaves the others intact.
    #[test]
    fn matrix_row_isolation(rows in 2usize..20, dim in 1usize..8, target in 0usize..20) {
        let target = target % rows;
        let mut m = Matrix::zeros(rows, dim);
        m.row_mut(target).fill(7.0);
        for r in 0..rows {
            if r == target {
                prop_assert!(m.row(r).iter().all(|&v| v == 7.0));
            } else {
                prop_assert!(m.row(r).iter().all(|&v| v == 0.0));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The alias-method noise table reproduces the unigram^α distribution
    /// for arbitrary frequency vectors (χ²-lite check on the heaviest bin).
    #[test]
    fn noise_table_is_proportional(freqs in proptest::collection::vec(0u64..100, 2..12)) {
        prop_assume!(freqs.iter().any(|&f| f > 0));
        use rand::SeedableRng;
        let table = taobao_sisg::sgns::NoiseTable::from_freqs(&freqs, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let draws = 30_000usize;
        let mut counts = vec![0u64; freqs.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng).index()] += 1;
        }
        let total: u64 = freqs.iter().sum();
        for (i, &f) in freqs.iter().enumerate() {
            let expected = draws as f64 * f as f64 / total as f64;
            if expected >= 300.0 {
                let got = counts[i] as f64;
                prop_assert!(
                    (got - expected).abs() < expected * 0.25 + 30.0,
                    "bin {}: got {}, expected {}", i, got, expected
                );
            }
            if f == 0 {
                prop_assert_eq!(counts[i], 0, "zero-frequency token drawn");
            }
        }
    }

    /// Directional pair sampling only ever looks right.
    #[test]
    fn right_only_pairs_point_forward(
        len in 2usize..40,
        window in 1usize..10,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        use taobao_sisg::sgns::{PairSampler, WindowMode};
        // Token value encodes its position, so direction is checkable.
        let seq: Vec<TokenId> = (0..len as u32).map(TokenId).collect();
        let sampler = PairSampler { window, mode: WindowMode::RightOnly, dynamic: false };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        sampler.pairs_into(&seq, &mut rng, &mut out);
        for (target, context) in out {
            prop_assert!(context.0 > target.0, "pair looks backward");
            prop_assert!((context.0 - target.0) as usize <= window);
        }
    }
}
