//! Quickstart: generate a Taobao-like corpus, train the full SISG model
//! (SISG-F-U-D), and ask the three production questions — similar items,
//! cold-item candidates, cold-user candidates.
//!
//! Run with: `cargo run --release --example quickstart`

use taobao_sisg::core::{Recommender, Variant};
use taobao_sisg::corpus::{CorpusConfig, GeneratedCorpus, ItemId};
use taobao_sisg::sgns::SgnsConfig;

fn main() {
    // A small synthetic corpus: 1000 items, ~100k clicks, full SI catalog.
    println!("generating corpus...");
    let corpus = GeneratedCorpus::generate(CorpusConfig::scaled(1_000, 7));
    println!(
        "  {} items, {} users ({} user types), {} sessions, {} clicks",
        corpus.config.n_items,
        corpus.config.n_users,
        corpus.users.n_user_types(),
        corpus.sessions.len(),
        corpus.sessions.total_clicks()
    );

    // Train the paper's best variant: item SI + user types + directional
    // windows with asymmetric input·output similarity.
    println!("training SISG-F-U-D...");
    let sgns = SgnsConfig {
        dim: 32,
        window: 3,
        negatives: 5,
        epochs: 2,
        ..Default::default()
    };
    let rec = Recommender::train(&corpus, Variant::SisgFUD, &sgns).expect("valid config");
    println!(
        "  trained on {} enriched tokens, {} positive pairs",
        rec.report().tokens,
        rec.report().stats.pairs
    );

    // 1. The matching-stage query: candidates after a click.
    let clicked = ItemId(3);
    println!("\ntop-5 items to show after a click on item {clicked}:");
    for r in rec.similar_items(clicked, 5) {
        println!("  item {:<6} score {:.4}", r.item.0, r.score);
    }
    // Directionality: the reverse similarity generally differs.
    let fwd = rec.model().similarity(ItemId(3), ItemId(5));
    let back = rec.model().similarity(ItemId(5), ItemId(3));
    println!("asymmetry: sim(3->5) = {fwd:.4}, sim(5->3) = {back:.4}");

    // 2. Cold item (Eq. 6): a brand-new item known only by its metadata.
    let si = *rec.catalog().si_values(ItemId(10));
    println!("\ncold-item candidates from SI alone (Eq. 6):");
    for r in rec.recommend_for_cold_item(&si, 5).expect("catalog SI") {
        println!("  item {:<6} score {:.4}", r.item.0, r.score);
    }

    // 3. Cold user (Figure 4): a new female user, age 19-25.
    println!("\ncold-user candidates for (female, 19-25):");
    match rec.recommend_for_cold_user(Some(0), Some(1), None, 5) {
        Ok(recs) => {
            for r in recs {
                println!("  item {:<6} score {:.4}", r.item.0, r.score);
            }
        }
        Err(e) => println!("  no candidates: {e}"),
    }
}
