//! The paper's interoperability claim, end to end:
//!
//! "after a simple enrichment of user click sessions with SI instances,
//! the resulting training data may be fed directly into any standard SGNS
//! implementation, such as word2vec."
//!
//! This example plays both sides of that hand-off:
//! 1. exports the enriched corpus as word2vec-ready text;
//! 2. stands in for the "external tool" by training on the parsed-back
//!    text with the workspace's own engine;
//! 3. exports the resulting vectors in word2vec text format and imports
//!    them into a serving [`SisgModel`].
//!
//! Run with: `cargo run --release --example external_word2vec`

use taobao_sisg::core::interop::{export_input, export_output, import_model};
use taobao_sisg::core::{SisgModel, Variant};
use taobao_sisg::corpus::{CorpusConfig, EnrichOptions, EnrichedCorpus, GeneratedCorpus, ItemId};
use taobao_sisg::sgns::{train, SgnsConfig};

fn main() {
    let corpus = GeneratedCorpus::generate(CorpusConfig::scaled(800, 21));
    let enriched = EnrichedCorpus::build(&corpus, EnrichOptions::FULL);

    // 1. Export the training text an external word2vec binary would consume.
    let mut text = Vec::new();
    enriched.write_text(&mut text).expect("export corpus");
    println!(
        "exported {} sessions / {} tokens as {:.1} MB of word2vec-ready text",
        enriched.len(),
        enriched.total_tokens(),
        text.len() as f64 / 1e6
    );
    let sample = String::from_utf8_lossy(&text);
    println!("first line:\n  {}", sample.lines().next().unwrap_or(""));

    // 2. "External" training: parse the text back into token ids (exactly
    //    what word2vec's vocabulary pass does) and run SGNS on it.
    let space = enriched.space().clone();
    let sequences: Vec<Vec<taobao_sisg::corpus::TokenId>> = sample
        .lines()
        .map(|line| {
            line.split(' ')
                .map(|tok| space.parse(tok).expect("every exported token parses"))
                .collect()
        })
        .collect();
    let cfg = SgnsConfig {
        dim: 24,
        window: 27, // 3 items × (1 + 8 SI tokens)
        negatives: 5,
        epochs: 1,
        ..Default::default()
    };
    let (store, stats) = train(&sequences, space.len(), &cfg);
    println!(
        "'external' trainer processed {} pairs at {:.0} tokens/s",
        stats.pairs,
        stats.tokens_per_second()
    );

    // 3. Ship the vectors back through the word2vec text format.
    let external = SisgModel::from_store(Variant::SisgFU, space.clone(), store)
        .expect("store covers the token space");
    let mut input_file = Vec::new();
    let mut output_file = Vec::new();
    export_input(&external, &mut input_file).expect("export input vectors");
    export_output(&external, &mut output_file).expect("export output vectors");
    println!(
        "vector files: {:.1} MB input, {:.1} MB output",
        input_file.len() as f64 / 1e6,
        output_file.len() as f64 / 1e6
    );

    let serving = import_model(
        Variant::SisgFU,
        space,
        &input_file[..],
        Some(&output_file[..]),
    )
    .expect("import vectors");

    // The imported model serves the matching stage like a native one.
    println!("\ntop-5 after a click on item 3 (imported vectors):");
    for n in serving.similar_items(ItemId(3), 5) {
        println!("  item {:<5} score {:.4}", n.token.0, n.score);
    }
    // Retrieval identical to the pre-export model.
    assert_eq!(
        external
            .similar_items(ItemId(3), 10)
            .iter()
            .map(|n| n.token.0)
            .collect::<Vec<_>>(),
        serving
            .similar_items(ItemId(3), 10)
            .iter()
            .map(|n| n.token.0)
            .collect::<Vec<_>>(),
    );
    println!("\nroundtrip verified: imported retrieval matches the original");
}
