//! The production matching-stage lifecycle the paper describes:
//!
//! 1. a daily training job learns embeddings from yesterday's sessions;
//! 2. the embedding artifact is serialized (the paper recomputes billions
//!    of vectors daily and ships them to serving);
//! 3. a serving process reloads the artifact and answers candidate-set
//!    queries, here compared head-to-head against the CF baseline on a
//!    simulated click stream.
//!
//! Run with: `cargo run --release --example matching_stage`

use taobao_sisg::cf::{CfConfig, CfModel};
use taobao_sisg::core::{SisgModel, Variant};
use taobao_sisg::corpus::split::{NextItemSplit, SplitStage};
use taobao_sisg::corpus::{CorpusConfig, GeneratedCorpus};
use taobao_sisg::embedding::codec;
use taobao_sisg::eval::{evaluate_hit_rates, ItemRetriever};
use taobao_sisg::sgns::SgnsConfig;

fn main() {
    println!("== daily training job ==");
    // Sparser than the default ratio (30 clicks/item instead of 100):
    // item-to-item CF thrives on dense co-occurrence, so sparsity is where
    // the paper's embedding approach earns its keep — mirroring the real
    // system, where most of a billion items are long-tail.
    let mut config = CorpusConfig::scaled(2_000, 11);
    config.n_sessions /= 3;
    let corpus = GeneratedCorpus::generate(config);
    let split = NextItemSplit::default().split(&corpus.sessions, SplitStage::Test);
    let sgns = SgnsConfig {
        dim: 32,
        window: 3,
        negatives: 5,
        epochs: 2,
        ..Default::default()
    };
    let (model, report) = SisgModel::train_on_sessions(
        &split.train,
        &corpus.catalog,
        &corpus.users,
        corpus.config.n_items,
        Variant::SisgFUD,
        &sgns,
    )
    .expect("valid config");
    println!(
        "trained {} tokens in {:.1}s ({:.0} tokens/s)",
        report.tokens,
        report.stats.seconds,
        report.stats.tokens_per_second()
    );

    println!("\n== artifact hand-off ==");
    let blob = codec::encode(model.store());
    println!("serialized embedding artifact: {} KB", blob.len() / 1_000);
    let reloaded = codec::decode(&blob).expect("artifact decodes");
    let serving = SisgModel::from_store(Variant::SisgFUD, model.space().clone(), reloaded)
        .expect("artifact covers the token space");

    println!("\n== serving: SISG vs CF on held-out next clicks ==");
    let cf = CfModel::train(&split.train, corpus.config.n_items, &CfConfig::default());
    let ks = [1, 10, 50];

    // The paper's motivation is sparsity: CF is excellent on hot items but
    // has nothing to say for the long tail. Split the evaluation by query
    // popularity to see both regimes.
    let mut freq = vec![0u64; corpus.config.n_items as usize];
    for s in split.train.iter() {
        for it in s.items {
            freq[it.index()] += 1;
        }
    }
    let tail: Vec<_> = split
        .eval
        .iter()
        .copied()
        .filter(|c| freq[c.query.index()] <= 15)
        .collect();
    println!(
        "{} eval cases total, {} with a long-tail query item (<=15 clicks)",
        split.eval.len(),
        tail.len()
    );
    for (label, cases) in [("all queries", &split.eval), ("tail queries", &tail)] {
        let sisg_hr = evaluate_hit_rates("SISG-F-U-D", &serving, cases, &ks);
        let cf_hr = evaluate_hit_rates("CF", &cf, cases, &ks);
        println!("\n  [{label}]");
        println!(
            "  {:>12}  {:>8}  {:>8}  {:>8}",
            "model", "HR@1", "HR@10", "HR@50"
        );
        for r in [&sisg_hr, &cf_hr] {
            println!(
                "  {:>12}  {:>8.4}  {:>8.4}  {:>8.4}",
                r.model, r.hr[0], r.hr[1], r.hr[2]
            );
        }
    }

    // Sanity check that serialization round-tripped the actual model: the
    // served candidates must match the in-memory model's.
    let q = split.eval[0].query;
    assert_eq!(model.retrieve(q, 10), serving.retrieve(q, 10));
    println!("\nserved candidates verified identical to the training-job model");
}
