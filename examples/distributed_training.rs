//! The distributed training engine end-to-end: enrich sequences, partition
//! the dictionary with HBGP, train with ATNS across simulated workers, and
//! inspect the communication/balance accounting that motivated the design.
//!
//! Run with: `cargo run --release --example distributed_training`

use taobao_sisg::corpus::{CorpusConfig, EnrichOptions, GeneratedCorpus};
use taobao_sisg::distributed::runtime::{train_distributed_on, PartitionStrategy};
use taobao_sisg::distributed::DistConfig;

fn main() {
    let corpus = GeneratedCorpus::generate(CorpusConfig::scaled(2_000, 5));
    println!(
        "corpus: {} items, {} clicks\n",
        corpus.config.n_items,
        corpus.sessions.total_clicks()
    );

    for (label, strategy, hot) in [
        (
            "HBGP + ATNS (production design)",
            PartitionStrategy::Hbgp { beta: 1.2 },
            256,
        ),
        ("hash partitioning, no hot set", PartitionStrategy::Hash, 0),
    ] {
        let config = DistConfig {
            workers: 4,
            dim: 32,
            window: 4,
            negatives: 5,
            epochs: 1,
            hot_set_size: hot,
            sync_interval: 2_000,
            strategy,
            ..Default::default()
        };
        let (_store, report) = train_distributed_on(&corpus, EnrichOptions::FULL, &config);
        println!("== {label} ==");
        println!("  pairs/worker:     {:?}", report.pairs_per_worker);
        println!(
            "  remote fraction:  {:.1}%",
            report.remote_fraction() * 100.0
        );
        println!(
            "  comm: {:.1} MB pair traffic + {:.1} MB hot-set sync ({} rounds)",
            report.pair_comm_bytes as f64 / 1e6,
            report.sync_comm_bytes as f64 / 1e6,
            report.sync_rounds
        );
        println!(
            "  cut fraction {:.3}, item-load imbalance {:.2}, pair imbalance {:.2}\n",
            report.cut_fraction,
            report.imbalance,
            report.pair_imbalance()
        );
    }
    println!(
        "the production design wins on remote fraction (HBGP keeps category-\n\
         coherent sessions worker-local; ATNS keeps hot SI tokens local) at\n\
         the price of periodic replica averaging."
    );
}
