//! Cold start, both sides (Section IV-C):
//!
//! - **items**: new products enter the catalog with metadata but no
//!   interactions — Eq. (6) infers their embedding from SI vectors;
//! - **users**: first-time visitors have demographics but no history —
//!   averaging the matching user-type vectors gives them a taste vector.
//!
//! Run with: `cargo run --release --example cold_start`

use std::collections::HashSet;
use taobao_sisg::core::cold_start::{cold_item_recommendations, cold_user_recommendations};
use taobao_sisg::core::{SisgModel, Variant};
use taobao_sisg::corpus::schema::ItemFeature;
use taobao_sisg::corpus::{Corpus, CorpusConfig, GeneratedCorpus, ItemId};
use taobao_sisg::sgns::SgnsConfig;

fn main() {
    let corpus = GeneratedCorpus::generate(CorpusConfig::scaled(1_000, 13));

    // Withhold 20 items entirely, as if they launch tomorrow.
    let launching: HashSet<ItemId> = (0..20).map(|i| ItemId(900 + i)).collect();
    let mut train = Corpus::new();
    for s in corpus.sessions.iter() {
        if !s.items.iter().any(|it| launching.contains(it)) {
            train.push(s.user, s.items);
        }
    }
    println!(
        "training on {} of {} sessions (sessions touching launching items removed)",
        train.len(),
        corpus.sessions.len()
    );
    let sgns = SgnsConfig {
        dim: 32,
        window: 3,
        negatives: 5,
        epochs: 2,
        ..Default::default()
    };
    let (model, _) = SisgModel::train_on_sessions(
        &train,
        &corpus.catalog,
        &corpus.users,
        corpus.config.n_items,
        Variant::SisgFU,
        &sgns,
    )
    .expect("valid config");

    println!("\n== cold items: Eq. (6) inference ==");
    let mut coherent = 0usize;
    let mut total = 0usize;
    for &item in launching.iter().take(3) {
        let si = corpus.catalog.si_values(item);
        println!(
            "launching item {} (leaf_category_{}):",
            item.0,
            si[ItemFeature::LeafCategory.slot()]
        );
        for n in cold_item_recommendations(&model, si, 5).expect("catalog SI") {
            let neighbor = ItemId(n.token.0);
            println!(
                "  -> item {:<5} leaf_category_{} (score {:.3})",
                neighbor.0,
                corpus.catalog.si_values(neighbor)[ItemFeature::LeafCategory.slot()],
                n.score
            );
        }
    }
    for &item in &launching {
        let si = corpus.catalog.si_values(item);
        for n in cold_item_recommendations(&model, si, 10).expect("catalog SI") {
            total += 1;
            if corpus.catalog.leaf_category(ItemId(n.token.0)) == corpus.catalog.leaf_category(item)
            {
                coherent += 1;
            }
        }
    }
    println!(
        "category-coherent neighbors for all {} launching items: {:.0}%",
        launching.len(),
        100.0 * coherent as f64 / total as f64
    );

    println!("\n== cold users: averaged user-type vectors ==");
    for (label, gender, age) in [
        ("female, 19-25", 0u8, 1u8),
        ("male, 19-25", 1, 1),
        ("male, 61+", 1, 6),
    ] {
        match cold_user_recommendations(&model, &corpus.users, Some(gender), Some(age), None, 5) {
            Ok(recs) => {
                let items: Vec<u32> = recs.iter().map(|n| n.token.0).collect();
                println!("  {label:<16} -> items {items:?}");
            }
            Err(e) => println!("  {label:<16} -> {e}"),
        }
    }
}
