//! The daily production cycle (Sections III-C and IV-A): seven days of
//! click logs land in a directory, the training job reads the window,
//! prepares the distributed pipeline (enrich → dictionary → HBGP partition
//! → hot set), checks the pre-flight numbers, trains, and ships the
//! embedding artifact.
//!
//! Run with: `cargo run --release --example daily_pipeline`

use taobao_sisg::corpus::io::DailyLogs;
use taobao_sisg::corpus::{Corpus, CorpusConfig, EnrichOptions, GeneratedCorpus};
use taobao_sisg::distributed::{DistConfig, TrainingPipeline};
use taobao_sisg::embedding::codec;

fn main() {
    // --- log ingestion side: a day of traffic arrives at a time ---------
    let dir = std::env::temp_dir().join("sisg_daily_pipeline_demo");
    let logs = DailyLogs::open(&dir).expect("open log directory");
    let full = GeneratedCorpus::generate(CorpusConfig::scaled(1_000, 17));
    let per_day = full.sessions.len() / 7;
    for day in 0..7u32 {
        let mut day_sessions = Corpus::new();
        for i in (day as usize * per_day)..((day as usize + 1) * per_day) {
            let s = full.sessions.session(i);
            day_sessions.push(s.user, s.items);
        }
        logs.write_day(day, &day_sessions).expect("write day log");
    }
    println!("ingested days: {:?}", logs.days().expect("list days"));

    // --- training job side: read the 7-day window, prepare, train -------
    let window = logs.read_window(7).expect("read window");
    println!(
        "training window: {} sessions, {} clicks",
        window.len(),
        window.total_clicks()
    );
    let corpus = GeneratedCorpus {
        config: full.config.clone(),
        catalog: full.catalog.clone(),
        users: full.users.clone(),
        sessions: window,
    };

    let config = DistConfig {
        workers: 4,
        dim: 32,
        window: 4,
        negatives: 5,
        epochs: 1,
        hot_set_size: 512,
        sync_interval: 2_000,
        ..Default::default()
    };
    let pipeline = TrainingPipeline::prepare(&corpus, EnrichOptions::FULL, config);
    let pf = pipeline.preflight();
    println!("\npre-flight check:");
    println!("  tokens            {}", pf.tokens);
    println!("  dictionary        {}", pf.vocab_size);
    println!("  cut fraction      {:.4}", pf.cut_fraction);
    println!("  load imbalance    {:.3}", pf.item_load_imbalance);
    println!(
        "  hot set           {} tokens ({:.0}% SI/user-type)",
        pf.hot_set_size,
        pf.hot_set_si_fraction * 100.0
    );

    let (store, report) = pipeline.train();
    println!(
        "\ntrained: {} pairs, {:.1}s wall",
        report.total_pairs(),
        report.seconds
    );
    println!(
        "comm: {:.1} MB pair traffic ({:.1}% pairs remote) + {:.1} MB sync",
        report.pair_comm_bytes as f64 / 1e6,
        report.remote_fraction() * 100.0,
        report.sync_comm_bytes as f64 / 1e6
    );

    // --- artifact hand-off -----------------------------------------------
    let blob = codec::encode(&store);
    let artifact = dir.join("embeddings.bin");
    std::fs::write(&artifact, &blob).expect("write artifact");
    println!(
        "\nwrote {} ({} KB) — ready for the serving side",
        artifact.display(),
        blob.len() / 1000
    );
    let _ = std::fs::remove_dir_all(&dir);
}
