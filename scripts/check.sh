#!/usr/bin/env bash
# The one-command local gate: everything CI runs, in order, fail-fast.
# See README "Static analysis & CI" and DESIGN.md §7.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "xtask lint"
cargo run -p xtask --quiet -- lint

step "miri (single-threaded embedding + sgns unit tests)"
# Miri proves the refactored Hogwild core UB-free on the non-racy tests.
# The component only exists on nightly toolchains; skip gracefully where
# it is unavailable instead of failing the whole gate.
if cargo miri --version >/dev/null 2>&1; then
  # MIRIFLAGS: isolation stays on; these tests touch no files or clocks.
  cargo miri test -p sisg-embedding -p sisg-sgns --lib
else
  echo "miri unavailable on this toolchain — skipping (not a failure)"
fi

step "tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

step "interleave: schedule-exhaustive protocol model checks"
# Enumerates every interleaving of the modeled hot-swap, cache-clear and
# RowPtr protocols and pins the exact schedule counts (DESIGN.md §7). The
# trees are a few hundred schedules, so the exhaustive run is seconds-scale.
# SISG_INTERLEAVE_SMOKE=<n> caps exploration (tests then skip count pinning)
# for constrained environments; CI sets a high ceiling that leaves the
# current models exhaustive while bounding runaway tree growth.
cargo test --release -q -p sisg-interleave

step "tsan (best effort): interleave models + hogwild stress under ThreadSanitizer"
# ThreadSanitizer needs a nightly toolchain with rust-src (-Zbuild-std).
# Skip cleanly when either is absent instead of failing the gate — the
# exhaustive interleave pass above is the authoritative concurrency check.
if rustup toolchain list 2>/dev/null | grep -q '^nightly' \
   && rustup component list --toolchain nightly 2>/dev/null \
      | grep -q 'rust-src (installed)'; then
  host="$(rustc -vV | sed -n 's/^host: //p')"
  RUSTFLAGS="-Zsanitizer=thread" \
    cargo +nightly test -Zbuild-std --target "$host" -q \
      -p sisg-interleave -p sisg-embedding
else
  echo "nightly + rust-src unavailable — skipping TSan (not a failure)"
fi

step "benches compile"
# Criterion benches are not run in CI (too slow, too noisy) but must keep
# compiling — they pin the public kernel/trainer APIs.
cargo build --release --benches -p sisg-bench

step "metrics smoke: emit a snapshot and validate its shape"
# A fast instrumented experiment writes its obs snapshot into a scratch
# results tree; validate-metrics fails on unparsable or misshapen JSON.
# See docs/OBSERVABILITY.md for the snapshot format.
rm -rf target/ci-results
SISG_RESULTS=target/ci-results SISG_ITEMS=400 SISG_EPOCHS=1 \
  cargo run --release --quiet -p sisg-bench --bin ablation_ann >/dev/null
cargo run -p xtask --quiet -- validate-metrics \
  --catalog docs/OBSERVABILITY.md target/ci-results/metrics/ablation_ann.json

step "simtest smoke: pinned fault seeds replay to their recorded traces"
# Three seeded fault schedules (drop+duplicate+delay) must reproduce their
# pinned event-trace hashes exactly — the deterministic-simulation contract
# of DESIGN.md §9. Seconds-scale: the virtual cluster needs no threads.
cargo test --release -q -p sisg-simtest --test determinism

step "perf smoke: seconds-scale perf_train run + schema validation"
# --smoke trains small 1- and 2-thread configurations end to end (the
# 2-thread tier runs both engines: partitioned and atomic Hogwild) and
# writes a BENCH_perf.json with the same sisg.perf.v1 schema as the full
# run, so the perf pipeline (both trainer engines, kernel micro-timings,
# JSON emission) is exercised on every change without minutes of benching.
SISG_RESULTS=target/ci-results \
  cargo run --release --quiet -p sisg-bench --bin perf_train -- --smoke >/dev/null
cargo run -p xtask --quiet -- validate-metrics \
  --catalog docs/OBSERVABILITY.md target/ci-results/BENCH_perf.json

step "serve smoke: seconds-scale perf_serve run + schema validation"
# --smoke load-tests the sharded serve engine (warm/cold/cold-user mix,
# cache, batching) against the sequential baseline on a small model, then
# replays a two-tenant scenario matrix (head_heavy + adversarial hot-key)
# through crates/scenario. Writes snapshot-shaped BENCH_serve.json and
# BENCH_scenario.json; validate-metrics checks both, including the
# per-tenant serve.tenant.<label>.* template instantiations.
SISG_RESULTS=target/ci-results \
  cargo run --release --quiet -p sisg-bench --bin perf_serve -- --smoke >/dev/null
cargo run -p xtask --quiet -- validate-metrics \
  --catalog docs/OBSERVABILITY.md target/ci-results/BENCH_serve.json
cargo run -p xtask --quiet -- validate-metrics \
  --catalog docs/OBSERVABILITY.md target/ci-results/BENCH_scenario.json

step "fresh smoke: seconds-scale perf_fresh run + schema validation"
# --smoke streams a tomorrow slice through the ingest pipeline while query
# threads hammer the engine across repeated snapshot publications, then
# writes a snapshot-shaped BENCH_fresh.json (freshness percentiles, swap
# accounting, frozen-vs-fresh HR@10); validate-metrics checks it.
SISG_RESULTS=target/ci-results \
  cargo run --release --quiet -p sisg-bench --bin perf_fresh -- --smoke >/dev/null
cargo run -p xtask --quiet -- validate-metrics \
  --catalog docs/OBSERVABILITY.md target/ci-results/BENCH_fresh.json

printf '\ncheck.sh: all gates passed\n'
