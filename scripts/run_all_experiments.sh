#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the ablations.
# Results (text + JSON) land in results/.
set -uo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

run() {
  local name="$1"
  shift
  echo "=== $name ==="
  ( "$@" 2>&1 | tee "results/${name}.txt" ) || echo "FAILED: $name"
  echo
}

run table1_schema     cargo run -q --release -p sisg-bench --bin table1_schema
run table2_datasets   cargo run -q --release -p sisg-bench --bin table2_datasets
run table3_hitrate    cargo run -q --release -p sisg-bench --bin table3_hitrate
run fig3_ctr          cargo run -q --release -p sisg-bench --bin fig3_ctr
run fig4_cold_users   cargo run -q --release -p sisg-bench --bin fig4_cold_users
run fig5_tsne         cargo run -q --release -p sisg-bench --bin fig5_tsne
run fig6_cold_items   cargo run -q --release -p sisg-bench --bin fig6_cold_items
run fig7a_workers     cargo run -q --release -p sisg-bench --bin fig7a_workers
run fig7b_corpus      cargo run -q --release -p sisg-bench --bin fig7b_corpus
run ablation_partition cargo run -q --release -p sisg-bench --bin ablation_partition
run ablation_atns     cargo run -q --release -p sisg-bench --bin ablation_atns
run ablation_beta     cargo run -q --release -p sisg-bench --bin ablation_beta
run ablation_ann      cargo run -q --release -p sisg-bench --bin ablation_ann
run ablation_sync     cargo run -q --release -p sisg-bench --bin ablation_sync

echo "all experiments complete"
